//! Shared deterministic PRNG for every seeded harness in the workspace.
//!
//! [`FaultPlan`](crate::FaultPlan), the property tests and the
//! `risotto-fuzz` differential fuzzer all draw from this one generator so
//! that "seed N" means the same byte stream everywhere: a reproducer line
//! like `fuzz 0xDEAD 1` is meaningful across tools, and no harness is
//! allowed to derive entropy from ambient state (time, pids, ASLR).
//!
//! The algorithm is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): a 64-bit counter
//! advanced by the golden-ratio increment and finalized with two
//! xor-shift-multiply rounds. It is trivially seedable from any `u64`
//! (including 0), passes BigCrush, and — unlike xorshift families — has
//! no forbidden zero state, which keeps `#[derive(Default)]` callers
//! honest.

/// A deterministic SplitMix64 stream.
///
/// ```
/// use risotto_core::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment: 2^64 / φ, the canonical SplitMix64 gamma.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// A stream seeded with `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping; the bias is < 2^-32 for
        // every n this workspace uses (all far below 2^32).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..n` (`0` when `n == 0`).
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// `true` with probability `num / den` (`den == 0` yields `false`).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.below(den) < num
    }

    /// An index into `weights`, chosen proportionally to the weights.
    /// Returns 0 if the weights are empty or sum to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        if total == 0 {
            return 0;
        }
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u64;
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }

    /// A fresh independent stream split off this one (advances `self`).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Known-answer test against the published SplitMix64 stream for
        // seed 1234567: guards against accidental algorithm drift, which
        // would silently change every recorded fuzz seed in the repo.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(r.next_u64(), 0x2C73_F084_5854_0FA5);
    }

    #[test]
    fn determinism_and_divergence() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let mut c = SplitMix64::new(10);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_a_valid_stream() {
        let mut r = SplitMix64::default();
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..2000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = SplitMix64::new(4);
        for _ in 0..500 {
            let i = r.weighted(&[0, 3, 0, 5]);
            assert!(i == 1 || i == 3, "zero-weight arm {i} chosen");
        }
        assert_eq!(r.weighted(&[]), 0);
        assert_eq!(r.weighted(&[0, 0]), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        for _ in 0..100 {
            assert!(!r.chance(0, 100));
            assert!(r.chance(100, 100));
            assert!(!r.chance(1, 0));
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SplitMix64::new(77);
        let mut a = root.split();
        let mut b = root.split();
        assert_ne!(a, b);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
