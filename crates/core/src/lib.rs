//! # risotto-core
//!
//! The Risotto dynamic binary translator (§4.2, §6): the end-to-end
//! engine that decodes MiniX86 guest binaries, translates them through
//! the TCG IR with the formally verified mapping schemes, executes the
//! generated MiniArm code on the weak-memory host machine, and — in the
//! `risotto` setup — links guest shared-library calls to native host
//! libraries through the IDL-driven dynamic linker.
//!
//! The five [`Setup`]s mirror the paper's evaluation (§7.1): `qemu`,
//! `no-fences`, `tcg-ver`, `risotto` and `native`.
//!
//! ## Example
//!
//! ```
//! use risotto_core::{Emulator, Setup};
//! use risotto_guest_x86::{AluOp, GelfBuilder, Gpr};
//! use risotto_host_arm::CostModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GelfBuilder::new("main");
//! b.asm.label("main");
//! b.asm.mov_ri(Gpr::RAX, 6);
//! b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 7);
//! b.asm.hlt();
//! let bin = b.finish()?;
//!
//! let mut emu = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
//! let report = emu.run(1_000_000)?;
//! assert_eq!(report.exit_vals[0], Some(42));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod faults;
mod idl;
pub mod obs;
mod rng;

pub use engine::{
    BackendKind, CoreDump, EmuError, Emulator, HostExport, HostLibrary, LinkError, Report, SbStats,
    Setup, TemplateStats, TierConfig, VerifyLevel, ENV_REGION, SPILL_REGION,
};
pub use faults::{FaultPlan, FaultSite};
pub use idl::{Idl, IdlError, IdlFunc, IdlType};
pub use obs::{
    HotTb, HotTbProfiler, JsonLinesSink, MetricsRegistry, MetricsSnapshot, NullSink,
    RingBufferSink, TraceEvent, TraceSink, TraceStage,
};
pub use risotto_host_arm::{AtomicEvent, RmwStyle, SchedPolicy};
pub use risotto_tcg::{PassConfig, VerifyError, VerifyPass};
pub use rng::SplitMix64;
