//! The unified metrics registry: every counter the engine, optimizer and
//! host machine expose, under one schema (see `docs/METRICS.md`).
//!
//! The registry is *passive*: it is filled from the authoritative
//! sources (`Report`-era fields, [`risotto_tcg::OptStats`],
//! `ChainStats`/`CacheStats`/`CoreStats`) and never feeds back into
//! execution, so enabling observability cannot change simulated cycles.

use risotto_memmodel::FenceKind;
use std::collections::BTreeMap;
use std::fmt;

/// Schema version stamped into every [`MetricsSnapshot`].
pub const SNAPSHOT_VERSION: u64 = 1;

/// The type of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Summary of observed samples (count / sum / min / max).
    Histogram,
}

impl MetricKind {
    /// Lower-case name used in the JSON exposition.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Registration record for one metric (or one metric family, when the
/// name contains a `<i>` placeholder segment — e.g. `core.<i>.insns`).
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Metric name; dot-separated, `<i>` marks a per-index family.
    pub name: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Unit of the value (e.g. `cycles`, `blocks`, `ns`).
    pub unit: &'static str,
    /// One-line description.
    pub help: String,
}

/// Summary statistics of one histogram metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observed samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistSummary {
    fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

/// The value of one metric in a registry or snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram summary.
    Histogram(HistSummary),
}

impl MetricValue {
    /// The scalar value of a counter or gauge (`None` for histograms).
    pub fn scalar(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram(_) => None,
        }
    }

    fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

fn spec(name: &str, kind: MetricKind, unit: &'static str, help: &str) -> MetricSpec {
    MetricSpec { name: name.to_owned(), kind, unit, help: help.to_owned() }
}

/// The unified metrics registry.
///
/// Every metric of the static schema ([`MetricsRegistry::specs`]) is
/// pre-registered at zero; per-index family members (`core.<i>.…`) are
/// materialized on first write. Values live in a `BTreeMap`, so
/// snapshots and their JSON exposition are deterministically ordered.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    values: BTreeMap<String, MetricValue>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with every non-family metric of the schema at zero.
    pub fn new() -> MetricsRegistry {
        let mut values = BTreeMap::new();
        for s in Self::specs() {
            if s.name.contains("<i>") {
                continue; // family: members registered on first write
            }
            let v = match s.kind {
                MetricKind::Counter => MetricValue::Counter(0),
                MetricKind::Gauge => MetricValue::Gauge(0),
                MetricKind::Histogram => MetricValue::Histogram(HistSummary::default()),
            };
            values.insert(s.name, v);
        }
        MetricsRegistry { values }
    }

    /// The full metric schema: one [`MetricSpec`] per metric, including
    /// the per-kind fence counters and the `core.<i>.…` per-core
    /// families. `docs/METRICS.md` must document exactly this list
    /// (enforced by `tests/obs.rs`).
    pub fn specs() -> Vec<MetricSpec> {
        use MetricKind::{Counter, Gauge, Histogram};
        let mut v = vec![
            spec("translate.blocks", Counter, "blocks", "Translations installed (incl. retranslations and native thunks)"),
            spec("translate.retranslations", Counter, "blocks", "Translations beyond a block's first (evictions, corruption refills, quarantine retries)"),
            spec("translate.fallback_blocks", Counter, "blocks", "Quarantine episodes: blocks that entered interpreter fallback"),
            spec("translate.interp_steps", Counter, "insns", "Guest instructions executed by the fallback interpreter"),
            spec("translate.tbcache_hits", Counter, "lookups", "Engine-side TB-map lookups that found an existing translation"),
            spec("translate.insns", Counter, "insns", "Guest instructions covered by tier-1 translations"),
            spec("template.blocks", Counter, "blocks", "Blocks translated by tier-0 template instantiation"),
            spec("template.insns", Counter, "insns", "Guest instructions covered by tier-0 template translations"),
            spec("template.promotions", Counter, "blocks", "Tier-0 blocks re-translated through the tier-1 pipeline on warming"),
            spec("template.promotion_failures", Counter, "blocks", "Tier-0→1 promotions that failed; the template stays installed"),
            spec("fault.injected", Counter, "faults", "Injected translate/lower/syscall faults encountered"),
            spec("opt.folded", Counter, "ops", "Constants folded by the optimizer"),
            spec("opt.loads_forwarded", Counter, "ops", "Loads forwarded (RAR + RAW elimination)"),
            spec("opt.stores_eliminated", Counter, "ops", "Dead stores removed (WAW elimination)"),
            spec("opt.fences_merged", Counter, "fences", "Fences merged away (all kinds)"),
            spec("opt.dce_removed", Counter, "ops", "Ops removed by dead-code elimination"),
            spec("chain.hits", Counter, "exits", "Direct-jump exits through an already-patched chain slot"),
            spec("chain.links", Counter, "exits", "Direct-jump exits resolved by the dispatcher then patched"),
            spec("chain.flushes", Counter, "slots", "Chain slots un-patched / jump-cache entries dropped on unmap"),
            spec("jcache.hits", Counter, "exits", "Indirect exits that hit the per-core jump cache"),
            spec("jcache.misses", Counter, "exits", "Indirect exits resolved by the full dispatcher lookup"),
            spec("tbcache.installs", Counter, "regions", "Code regions installed into the TB cache"),
            spec("tbcache.region_reuses", Counter, "regions", "Installs that reused a freed region"),
            spec("tbcache.evictions", Counter, "blocks", "TB mappings removed (evictions, invalidations, rebinds)"),
            spec("exec.insns", Counter, "insns", "Host instructions retired, all cores"),
            spec("exec.atomics", Counter, "insns", "Atomic RMW instructions executed"),
            spec("exec.helper_calls", Counter, "calls", "Helper calls executed"),
            spec("exec.native_calls", Counter, "calls", "Native host-library calls executed"),
            spec("fence.exec.dmb_ld", Counter, "fences", "DMB LD barriers executed"),
            spec("fence.exec.dmb_st", Counter, "fences", "DMB ST barriers executed"),
            spec("fence.exec.dmb_ff", Counter, "fences", "DMB FF (SY) barriers executed"),
            spec("fence.exec.cycles", Counter, "cycles", "Cycles attributed to barriers"),
            spec("engine.syscalls", Counter, "calls", "Completed (non-busy-wait) guest syscalls"),
            spec("sb.promotions", Counter, "superblocks", "Tier-2 superblocks successfully installed"),
            spec("sb.promotion_failures", Counter, "attempts", "Promotions abandoned mid-pipeline (stitch/lowering failure)"),
            spec("sb.declined", Counter, "events", "Hot-TB events declined before stitching (short trace, PLT, quarantined)"),
            spec("sb.installs", Counter, "installs", "Superblock code installs on the machine"),
            spec("sb.subsumed_tbs", Counter, "blocks", "Tier-1 translations evicted because a superblock subsumed them"),
            spec("sb.entries", Counter, "entries", "Machine transfers that entered a superblock head"),
            spec("sb.tbs_merged", Counter, "blocks", "Tier-1 blocks merged into superblocks (sum of trace lengths)"),
            spec("sb.side_exits", Counter, "guards", "SideExit guards emitted across installed superblocks"),
            spec("sb.fences_merged_cross", Counter, "fences", "Fence merges that crossed a former TB boundary"),
            spec("verify.checked", Counter, "checks", "Translation-verifier checks executed (static passes and install read-backs)"),
            spec("verify.violations", Counter, "violations", "Translations rejected by the verifier (sum of the per-pass counters)"),
            spec("verify.ir_violations", Counter, "violations", "IR-lint (pass 1) rejections"),
            spec("verify.fence_violations", Counter, "violations", "Fence-obligation (pass 2) rejections"),
            spec("verify.encoding_violations", Counter, "violations", "Encoding / install read-back (pass 3) rejections"),
            spec("analysis.enabled", Gauge, "flag", "1 while whole-program analysis facts are active"),
            spec("analysis.sites", Counter, "sites", "Static memory-access sites the analysis discovered"),
            spec("analysis.private", Counter, "sites", "Sites proven core-private"),
            spec("analysis.readonly", Counter, "sites", "Sites proven read-only-shared"),
            spec("analysis.shared", Counter, "sites", "Sites possibly written by more than one core"),
            spec("analysis.atomics", Counter, "sites", "Atomic RMW sites (never relaxable)"),
            spec("analysis.relaxable", Counter, "sites", "Private + read-only sites on a poison-free image"),
            spec("analysis.poisons", Counter, "poisons", "Soundness poisons (unresolved indirection, solver limits, ...)"),
            spec("analysis.lints", Counter, "findings", "Guest lint findings"),
            spec("analysis.instances", Counter, "cores", "Core instances analysed (root + spawned)"),
            spec("analysis.refined_loops", Counter, "loops", "Counted loops refined by bounded unrolling"),
            spec("analysis.relaxed", Counter, "fences", "Fences removed by analysis-driven relaxation at translate time"),
            spec("analysis.relaxed_blocks", Counter, "blocks", "Tier-1 translations with at least one relaxed event"),
            spec("analysis.cache_hits", Counter, "lookups", "Analysis-cache lookups that found existing facts"),
            spec("analysis.cache_misses", Counter, "lookups", "Analysis-cache lookups that ran the full analysis"),
            spec("analysis.hint_folded", Counter, "ops", "Pure IR ops replaced by constants via known-bits hints"),
            spec("analysis.branches_pruned", Counter, "branches", "Conditional exits statically decided by known-bits hints"),
            spec("regalloc.env_loads", Counter, "loads", "Env-slot LDRs emitted (first-use pin fills and refills)"),
            spec("regalloc.env_stores", Counter, "stores", "Env-slot STRs emitted (deferred flush write-backs and dirty evictions)"),
            spec("regalloc.env_loads_eliminated", Counter, "loads", "GetReg ops served from a pinned host register (env LDRs avoided)"),
            spec("regalloc.env_stores_eliminated", Counter, "stores", "SetReg ops coalesced into a deferred flush (env STRs avoided)"),
            spec("regalloc.spills", Counter, "stores", "Temp values spilled to the spill area under register pressure"),
            spec("regalloc.reloads", Counter, "loads", "Temp values reloaded from the spill area"),
            spec("regalloc.pinned_regs", Counter, "registers", "Distinct guest registers pinned in host registers, summed over blocks"),
            spec("exec.cycles", Gauge, "cycles", "Simulated parallel runtime (max core clock)"),
            spec("exec.cores", Gauge, "cores", "Cores configured for the run"),
            spec("tbcache.resident", Gauge, "blocks", "TB mappings resident at snapshot time"),
            spec("code.bytes", Gauge, "bytes", "Code-cache footprint (incl. holes awaiting reuse)"),
            spec("core.<i>.insns", Gauge, "insns", "Host instructions retired by core i"),
            spec("core.<i>.cycles", Gauge, "cycles", "Local clock of core i"),
            spec("stage.template_ns", Histogram, "ns", "Wall time of tier-0 template translation, per block"),
            spec("stage.decode_ns", Histogram, "ns", "Wall time of frontend decode+translate, per block"),
            spec("stage.opt_ns", Histogram, "ns", "Wall time of the optimizer pipeline, per block"),
            spec("stage.encode_ns", Histogram, "ns", "Wall time of backend lowering, per block"),
            spec("stage.install_ns", Histogram, "ns", "Wall time of code install + TB mapping, per block"),
            spec("sb.stage.select_ns", Histogram, "ns", "Wall time of tier-2 trace selection, per promotion attempt"),
            spec("sb.stage.opt_ns", Histogram, "ns", "Wall time of the region optimizer over a stitched superblock"),
            spec("sb.stage.encode_ns", Histogram, "ns", "Wall time of backend lowering for a superblock"),
            spec("fuzz.programs", Counter, "programs", "Random programs generated and differentially executed"),
            spec("fuzz.configs_run", Counter, "runs", "Individual oracle-configuration executions (interpreter included)"),
            spec("fuzz.divergences", Counter, "divergences", "Programs whose oracle configurations disagreed (or tripped the validator)"),
            spec("fuzz.minimizer_steps", Counter, "steps", "Candidate reductions attempted while delta-debugging divergent programs"),
            spec("fuzz.fault_runs", Counter, "runs", "Fault-composed executions (random FaultPlan layered over a generated program)"),
            spec("fuzz.promoted", Counter, "programs", "Fuzz iterations whose tier-2 configuration installed at least one superblock"),
        ];
        for k in FenceKind::TCG_ALL {
            let n = k.tcg_name().expect("TCG fence has a short name");
            v.push(spec(
                &format!("fence.inserted.{n}"),
                Counter,
                "fences",
                &format!("`{k:?}` fences emitted by the frontend (counted before optimization)"),
            ));
            v.push(spec(
                &format!("fence.merged.{n}"),
                Counter,
                "fences",
                &format!("`{k:?}` fences merged away by the optimizer"),
            ));
        }
        v
    }

    /// Normalizes a concrete metric name to its documented form: numeric
    /// dot-segments become `<i>` (`core.3.insns` → `core.<i>.insns`).
    pub fn doc_name(name: &str) -> String {
        name.split('.')
            .map(|seg| {
                if seg.bytes().all(|b| b.is_ascii_digit()) && !seg.is_empty() {
                    "<i>"
                } else {
                    seg
                }
            })
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Adds `delta` to a counter (registering it as a counter if new).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.values.entry(name.to_owned()).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => debug_assert!(false, "add on non-counter {name}: {other:?}"),
        }
    }

    /// Sets a counter to an absolute total (for counters mirrored from an
    /// authoritative accumulator rather than incremented in place).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.values.insert(name.to_owned(), MetricValue::Counter(v));
    }

    /// Sets a gauge (registering it if new — how `core.<i>.…` family
    /// members materialize).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        self.values.insert(name.to_owned(), MetricValue::Gauge(v));
    }

    /// Records one histogram sample.
    pub fn observe(&mut self, name: &str, sample: u64) {
        match self
            .values
            .entry(name.to_owned())
            .or_insert(MetricValue::Histogram(HistSummary::default()))
        {
            MetricValue::Histogram(h) => h.observe(sample),
            other => debug_assert!(false, "observe on non-histogram {name}: {other:?}"),
        }
    }

    /// Reads a counter total (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Reads a gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Reads a histogram summary (empty if absent).
    pub fn histogram(&self, name: &str) -> HistSummary {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => HistSummary::default(),
        }
    }

    /// An immutable, versioned copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { version: SNAPSHOT_VERSION, metrics: self.values.clone() }
    }
}

/// A versioned, immutable copy of a [`MetricsRegistry`], with a JSON
/// exposition that round-trips.
///
/// ```
/// use risotto_core::obs::{MetricsRegistry, MetricsSnapshot};
///
/// let mut reg = MetricsRegistry::new();
/// reg.add("chain.hits", 7);
/// reg.set_gauge("exec.cycles", 1234);
/// reg.observe("stage.decode_ns", 800);
/// reg.observe("stage.decode_ns", 200);
///
/// let snap = reg.snapshot();
/// let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
/// assert_eq!(back, snap);
/// assert_eq!(back.counter("chain.hits"), 7);
/// assert_eq!(back.gauge("exec.cycles"), 1234);
/// assert_eq!(back.histogram("stage.decode_ns").sum, 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Metric name → value, deterministically ordered.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Reads a counter total (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Reads a gauge (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Reads a histogram summary (empty if absent).
    pub fn histogram(&self, name: &str) -> HistSummary {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => HistSummary::default(),
        }
    }

    /// Compact JSON exposition:
    /// `{"version":1,"metrics":{"name":{"type":"counter","value":N},…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.metrics.len());
        out.push_str(&format!("{{\"version\": {}, \"metrics\": {{", self.version));
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": "));
            match v {
                MetricValue::Counter(n) | MetricValue::Gauge(n) => {
                    out.push_str(&format!("{{\"type\": \"{}\", \"value\": {n}}}", v.kind().name()));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                        h.count, h.sum, h.min, h.max
                    ));
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// Parses the [`MetricsSnapshot::to_json`] exposition back.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed input (position included).
    pub fn from_json(s: &str) -> Result<MetricsSnapshot, JsonError> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.expect(b'{')?;
        let mut version = None;
        let mut metrics = BTreeMap::new();
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "version" => version = Some(p.number()?),
                "metrics" => {
                    p.expect(b'{')?;
                    if p.peek()? == b'}' {
                        p.expect(b'}')?;
                    } else {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            metrics.insert(name, p.metric_value()?);
                            if !p.comma_or(b'}')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(p.err(&format!("unknown key `{other}`"))),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        let version = version.ok_or_else(|| p.err("missing `version`"))?;
        Ok(MetricsSnapshot { version, metrics })
    }
}

/// Error from [`MetricsSnapshot::from_json`]: what went wrong, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description of the failure.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad metrics JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Minimal parser for exactly the subset of JSON that
/// [`MetricsSnapshot::to_json`] emits (objects, strings without escapes,
/// unsigned integers).
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.i, msg: msg.to_owned() }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.b.get(self.i).copied().ok_or_else(|| self.err("unexpected end of input"))
    }

    fn expect(&mut self, ch: u8) -> Result<(), JsonError> {
        let got = self.peek()?;
        if got != ch {
            return Err(self.err(&format!("expected `{}`, found `{}`", ch as char, got as char)));
        }
        self.i += 1;
        Ok(())
    }

    /// Consumes `,` and returns `true`, or consumes `close` and returns
    /// `false`.
    fn comma_or(&mut self, close: u8) -> Result<bool, JsonError> {
        let got = self.peek()?;
        self.i += 1;
        match got {
            b',' => Ok(true),
            c if c == close => Ok(false),
            c => {
                Err(self
                    .err(&format!("expected `,` or `{}`, found `{}`", close as char, c as char)))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            if self.b[self.i] == b'\\' {
                return Err(self.err("escape sequences are not part of the metrics schema"));
            }
            self.i += 1;
        }
        if self.i >= self.b.len() {
            return Err(self.err("unterminated string"));
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("invalid UTF-8 in string"))?
            .to_owned();
        self.i += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("number does not fit in u64"))
    }

    fn metric_value(&mut self) -> Result<MetricValue, JsonError> {
        self.expect(b'{')?;
        let mut ty = None;
        let mut fields: BTreeMap<String, u64> = BTreeMap::new();
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            if key == "type" {
                ty = Some(self.string()?);
            } else {
                fields.insert(key, self.number()?);
            }
            if !self.comma_or(b'}')? {
                break;
            }
        }
        let get = |k: &str| fields.get(k).copied().unwrap_or(0);
        match ty.as_deref() {
            Some("counter") => Ok(MetricValue::Counter(get("value"))),
            Some("gauge") => Ok(MetricValue::Gauge(get("value"))),
            Some("histogram") => Ok(MetricValue::Histogram(HistSummary {
                count: get("count"),
                sum: get("sum"),
                min: get("min"),
                max: get("max"),
            })),
            Some(other) => Err(self.err(&format!("unknown metric type `{other}`"))),
            None => Err(self.err("metric value missing `type`")),
        }
    }
}
