//! # Observability: metrics, tracing, and hot-TB profiling
//!
//! The unified observability layer of the engine (see `docs/METRICS.md`
//! for the metric reference and `docs/ARCHITECTURE.md` for where it sits
//! in the pipeline):
//!
//! * [`MetricsRegistry`] — typed counters / gauges / histograms covering
//!   translation, optimization, fences, TB caching and chaining,
//!   execution totals, and per-stage wall times. It absorbs the legacy
//!   `Report` / `ChainStats` counters behind one schema; snapshots
//!   ([`MetricsSnapshot`]) round-trip through JSON.
//! * [`TraceSink`] — span-style structured events
//!   ([`TraceEvent`]) at the decode / opt / encode / install / dispatch
//!   / fault boundaries, with guest-pc + core + TB-id context. Sinks:
//!   [`NullSink`], [`RingBufferSink`], [`JsonLinesSink`].
//! * [`HotTbProfiler`] — per-TB execution and chain-miss counts with a
//!   [`HotTbProfiler::top_n`] report, fed by the engine dispatch loop
//!   and the host machine's transfer paths.
//!
//! Everything here is **zero-cost when disabled** and *passive* when
//! enabled: observability reads the authoritative execution state but
//! never writes it, so an instrumented run produces bit-identical
//! simulated cycles to an uninstrumented one (enforced by `tests/obs.rs`
//! and the `ci.sh` pipeline-bench gate).

mod profile;
mod registry;
mod trace;

pub use profile::{HotTb, HotTbProfiler};
pub use registry::{
    HistSummary, JsonError, MetricKind, MetricSpec, MetricValue, MetricsRegistry, MetricsSnapshot,
    SNAPSHOT_VERSION,
};
pub use trace::{JsonLinesSink, NullSink, RingBufferSink, TraceEvent, TraceSink, TraceStage};

use std::fmt;

/// The engine's observability state: registry + sink + profiler and the
/// enable flags. Internal to the crate; the `Emulator` exposes it
/// through accessors.
pub(crate) struct Obs {
    pub(crate) registry: MetricsRegistry,
    pub(crate) sink: Box<dyn TraceSink>,
    /// Events are only constructed when a sink is installed.
    pub(crate) tracing: bool,
    /// Per-stage wall-clock histograms (decode/opt/encode/install).
    pub(crate) timing: bool,
    /// Engine-side dispatch-loop profiling (the machine has its own
    /// flag, toggled in lockstep).
    pub(crate) profiling: bool,
    pub(crate) profiler: HotTbProfiler,
    seq: u64,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.tracing)
            .field("timing", &self.timing)
            .field("profiling", &self.profiling)
            .field("events", &self.seq)
            .finish()
    }
}

impl Obs {
    pub(crate) fn new() -> Obs {
        Obs {
            registry: MetricsRegistry::new(),
            sink: Box::new(NullSink),
            tracing: false,
            timing: false,
            profiling: false,
            profiler: HotTbProfiler::new(),
            seq: 0,
        }
    }

    /// Constructs and records one event (only call when `tracing`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit(
        &mut self,
        stage: TraceStage,
        core: Option<usize>,
        guest_pc: Option<u64>,
        tb_id: Option<u64>,
        dur_ns: Option<u64>,
        detail: String,
    ) {
        let ev = TraceEvent { seq: self.seq, stage, core, guest_pc, tb_id, dur_ns, detail };
        self.seq += 1;
        self.sink.record(&ev);
    }
}
