//! Structured span-style tracing: one [`TraceEvent`] per pipeline
//! boundary (decode / opt / encode / install / dispatch / fault), routed
//! through a pluggable [`TraceSink`].
//!
//! Tracing is opt-in ([`crate::Emulator::set_trace_sink`]); the default
//! engine constructs no events at all. Sinks are observational only —
//! they can never change simulated cycles.

use std::collections::VecDeque;
use std::fmt;
use std::io::{BufWriter, Write};

/// Which pipeline boundary an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// Frontend decode + x86→TCG translation of one block.
    Decode,
    /// Optimizer pipeline over one block.
    Opt,
    /// Backend lowering (TCG→Arm encode) of one block.
    Encode,
    /// Code install + TB-map registration.
    Install,
    /// Engine dispatch: a core (re-)entered translated or interpreted
    /// code at a guest pc.
    Dispatch,
    /// A fault boundary: injected or real translation/lowering/syscall
    /// fault, or a TB-cache corruption discard.
    Fault,
}

impl TraceStage {
    /// Lower-case stage name used in the JSON-lines exposition.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Decode => "decode",
            TraceStage::Opt => "opt",
            TraceStage::Encode => "encode",
            TraceStage::Install => "install",
            TraceStage::Dispatch => "dispatch",
            TraceStage::Fault => "fault",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-emulator sequence number.
    pub seq: u64,
    /// The pipeline boundary.
    pub stage: TraceStage,
    /// Core index, when the event is attributable to a core.
    pub core: Option<usize>,
    /// Guest pc of the block involved, when known.
    pub guest_pc: Option<u64>,
    /// Engine TB id (1-based install order), when the block has one.
    pub tb_id: Option<u64>,
    /// Stage wall time in nanoseconds, when stage timing is enabled.
    pub dur_ns: Option<u64>,
    /// Free-form detail (fault site, op counts, …).
    pub detail: String,
}

impl TraceEvent {
    /// One-line JSON encoding (the JSON-lines file format).
    pub fn to_json_line(&self) -> String {
        let mut s = format!("{{\"seq\": {}, \"stage\": \"{}\"", self.seq, self.stage.name());
        if let Some(c) = self.core {
            s.push_str(&format!(", \"core\": {c}"));
        }
        if let Some(pc) = self.guest_pc {
            s.push_str(&format!(", \"guest_pc\": {pc}"));
        }
        if let Some(id) = self.tb_id {
            s.push_str(&format!(", \"tb_id\": {id}"));
        }
        if let Some(ns) = self.dur_ns {
            s.push_str(&format!(", \"dur_ns\": {ns}"));
        }
        if !self.detail.is_empty() {
            let escaped: String = self
                .detail
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    c if c.is_control() => " ".chars().collect(),
                    c => vec![c],
                })
                .collect();
            s.push_str(&format!(", \"detail\": \"{escaped}\""));
        }
        s.push('}');
        s
    }
}

/// Receiver of trace events. Implementations must be observational:
/// recording an event may not influence the emulation.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Discards every event. A run with a `NullSink` is bit-identical to a
/// run with any other sink (and to a run with tracing disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Keeps the most recent `capacity` events in memory, overwriting the
/// oldest when full (flight-recorder style).
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    overwritten: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.max(1)),
            overwritten: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were dropped to make room for newer ones.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.overwritten += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// Streams events as JSON lines to a file (one object per line).
pub struct JsonLinesSink {
    w: BufWriter<std::fs::File>,
    path: String,
}

impl JsonLinesSink {
    /// Creates (truncating) `path` and streams events into it.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn create(path: &str) -> std::io::Result<JsonLinesSink> {
        Ok(JsonLinesSink { w: BufWriter::new(std::fs::File::create(path)?), path: path.to_owned() })
    }
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").field("path", &self.path).finish()
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&mut self, event: &TraceEvent) {
        // Best effort: a full disk must not abort the emulation.
        let _ = writeln!(self.w, "{}", event.to_json_line());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}
