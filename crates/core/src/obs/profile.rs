//! The hot-TB profiler: per-translation-block execution and chain-miss
//! counts, with a `top_n` report for finding hot paths (cf. QEMU-style
//! per-TB execution profiles).

use std::collections::HashMap;

/// One profiled translation block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotTb {
    /// Engine TB id: 1-based install order of the block's first
    /// translation, or 0 for blocks only ever interpreted.
    pub tb_id: u64,
    /// Guest pc of the block.
    pub guest_pc: u64,
    /// Times the block was entered (chain hits, jump-cache hits,
    /// dispatcher transfers, and engine dispatch-loop entries).
    pub execs: u64,
    /// Entries that missed every fast path and went through the
    /// dispatcher or the engine's translation-miss handler.
    pub chain_misses: u64,
}

/// Aggregates per-block execution counts, keyed by guest pc (each block
/// keeps its stable engine TB id alongside).
#[derive(Debug, Clone, Default)]
pub struct HotTbProfiler {
    blocks: HashMap<u64, HotTb>,
}

impl HotTbProfiler {
    /// An empty profiler.
    pub fn new() -> HotTbProfiler {
        HotTbProfiler::default()
    }

    /// Drops all collected entries.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Adds `execs`/`chain_misses` for the block at `guest_pc`; `tb_id`
    /// wins over a previously recorded 0 (interpreted-then-translated).
    pub fn record(&mut self, tb_id: u64, guest_pc: u64, execs: u64, chain_misses: u64) {
        let e = self.blocks.entry(guest_pc).or_insert(HotTb {
            tb_id,
            guest_pc,
            execs: 0,
            chain_misses: 0,
        });
        if e.tb_id == 0 {
            e.tb_id = tb_id;
        }
        e.execs += execs;
        e.chain_misses += chain_misses;
    }

    /// Number of profiled blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no block has been profiled.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The `n` most-executed blocks, hottest first (ties broken by guest
    /// pc for determinism).
    pub fn top_n(&self, n: usize) -> Vec<HotTb> {
        let mut v: Vec<HotTb> = self.blocks.values().copied().collect();
        v.sort_by_key(|b| (std::cmp::Reverse(b.execs), b.guest_pc));
        v.truncate(n);
        v
    }
}
