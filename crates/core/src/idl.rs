//! The Interface Definition Language of the dynamic host linker (§6.2).
//!
//! Function signatures cannot be recovered from a raw binary, so Risotto
//! reads an IDL file describing the shared-library functions that may be
//! linked natively. The grammar is C-prototype-like, one function per
//! line; `#` starts a comment:
//!
//! ```text
//! # math
//! f64 sin(f64);
//! u64 md5(ptr, u64, ptr);
//! void kv_put(ptr, u64, u64);
//! ```

use std::fmt;

/// Parameter / return types. Values travel as 64-bit register words in
/// both ABIs (f64 as bit patterns), so marshaling is a register-file
/// mapping; the types exist to validate arity and document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdlType {
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
    /// IEEE-754 double (bit pattern in a register).
    F64,
    /// Guest pointer.
    Ptr,
    /// No value (return type only).
    Void,
}

impl IdlType {
    fn parse(s: &str) -> Option<IdlType> {
        Some(match s {
            "u64" => IdlType::U64,
            "i64" => IdlType::I64,
            "f64" => IdlType::F64,
            "ptr" => IdlType::Ptr,
            "void" => IdlType::Void,
            _ => return None,
        })
    }
}

/// One described function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlFunc {
    /// Function name, as it appears in `.dynsym`.
    pub name: String,
    /// Return type.
    pub ret: IdlType,
    /// Parameter types (at most 6: the register-argument ABI).
    pub params: Vec<IdlType>,
}

/// A parsed IDL file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Idl {
    /// Described functions.
    pub funcs: Vec<IdlFunc>,
}

impl Idl {
    /// Parses IDL text.
    ///
    /// # Errors
    ///
    /// Returns [`IdlError`] with a line number on malformed input.
    pub fn parse(text: &str) -> Result<Idl, IdlError> {
        let mut funcs = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            funcs
                .push(parse_line(line).map_err(|msg| IdlError { line: lineno + 1, message: msg })?);
        }
        Ok(Idl { funcs })
    }

    /// Looks up a function by name.
    pub fn lookup(&self, name: &str) -> Option<&IdlFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

fn parse_line(line: &str) -> Result<IdlFunc, String> {
    let line = line.strip_suffix(';').ok_or("missing trailing `;`")?.trim();
    let open = line.find('(').ok_or("missing `(`")?;
    let close = line.rfind(')').ok_or("missing `)`")?;
    if close < open {
        return Err("mismatched parentheses".into());
    }
    let head = line[..open].trim();
    let (ret_s, name) =
        head.rsplit_once(char::is_whitespace).ok_or("expected `<ret-type> <name>(...)`")?;
    let ret = IdlType::parse(ret_s.trim()).ok_or_else(|| format!("unknown type `{ret_s}`"))?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("invalid function name `{name}`"));
    }
    let args_s = line[open + 1..close].trim();
    let mut params = Vec::new();
    if !args_s.is_empty() && args_s != "void" {
        for p in args_s.split(',') {
            let t = IdlType::parse(p.trim())
                .ok_or_else(|| format!("unknown parameter type `{}`", p.trim()))?;
            if t == IdlType::Void {
                return Err("`void` is not a parameter type".into());
            }
            params.push(t);
        }
    }
    if params.len() > 6 {
        return Err("more than 6 parameters (register ABI limit)".into());
    }
    Ok(IdlFunc { name: name.to_owned(), ret, params })
}

/// An IDL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IDL line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let idl = Idl::parse("f64 sin(f64);").unwrap();
        assert_eq!(
            idl.funcs,
            vec![IdlFunc { name: "sin".into(), ret: IdlType::F64, params: vec![IdlType::F64] }]
        );
    }

    #[test]
    fn parses_comments_blank_lines_and_multi_arg() {
        let text = "\n# digests\nu64 md5(ptr, u64, ptr);  # (buf, len, out)\nvoid flush();\n";
        let idl = Idl::parse(text).unwrap();
        assert_eq!(idl.funcs.len(), 2);
        assert_eq!(idl.funcs[0].params, vec![IdlType::Ptr, IdlType::U64, IdlType::Ptr]);
        assert_eq!(idl.funcs[1].ret, IdlType::Void);
        assert!(idl.funcs[1].params.is_empty());
        assert!(idl.lookup("md5").is_some());
        assert!(idl.lookup("sha1").is_none());
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "f64 sin(f64)",                        // no semicolon
            "sin(f64);",                           // no return type
            "f64 (f64);",                          // no name
            "q32 sin(f64);",                       // unknown type
            "f64 sin(void, u64);",                 // void param
            "u64 f(u64,u64,u64,u64,u64,u64,u64);", // 7 params
        ] {
            assert!(Idl::parse(bad).is_err(), "should reject: {bad}");
        }
        let err = Idl::parse("ok line is not\nf64 sin(f64)\n").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
