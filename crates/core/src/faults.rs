//! Deterministic fault injection for the translation pipeline.
//!
//! A [`FaultPlan`] describes *where the pipeline is allowed to break*
//! during a run: targeted failures at specific guest pcs, failures of
//! specific host-library links, rejection of specific syscalls, and
//! seeded background failure rates per pipeline layer. The engine
//! consults the plan at each layer boundary and degrades gracefully —
//! translation and lowering failures fall back to interpreted execution,
//! TB-cache corruption is *detected* (checksum model) and re-translated,
//! host-link failures fall back to the translated guest implementation —
//! while syscall-layer faults surface as typed errors.
//!
//! Everything is deterministic: the same seed and the same program yield
//! the same fault sequence, so any failure a sweep finds reproduces
//! exactly.
//!
//! ```
//! use risotto_core::FaultPlan;
//!
//! let plan = FaultPlan::seeded(7).fail_translate_at(0x1_0000);
//! ```

use crate::rng::SplitMix64;
use std::collections::BTreeSet;
use std::fmt;

/// A pipeline layer boundary where a fault can be injected.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The guest decoder / TCG frontend fails for a block.
    Translate,
    /// The host backend fails to emit code for a block.
    Lower,
    /// An installed translation-cache entry is corrupted or evicted.
    /// Corruption is always *detected* (the cache-entry checksum model):
    /// the entry is discarded and re-translated, never executed.
    TbCache,
    /// Linking a host-library export fails; the call falls back to the
    /// translated guest implementation behind the PLT stub.
    HostCall,
    /// The syscall layer rejects a request.
    Syscall,
}

impl FaultSite {
    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            FaultSite::Translate => 0,
            FaultSite::Lower => 1,
            FaultSite::TbCache => 2,
            FaultSite::HostCall => 3,
            FaultSite::Syscall => 4,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultSite::Translate => "translate",
            FaultSite::Lower => "lower",
            FaultSite::TbCache => "tb-cache",
            FaultSite::HostCall => "host-call",
            FaultSite::Syscall => "syscall",
        })
    }
}

/// A deterministic, seeded fault-injection plan.
///
/// Build one with [`FaultPlan::seeded`] and the chainable `fail_*` /
/// [`FaultPlan::rate`] methods, then hand it to
/// [`Emulator::set_fault_plan`](crate::Emulator::set_fault_plan) before
/// linking and running. The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Shared deterministic stream driving the background-rate rolls and
    /// victim picks (see [`SplitMix64`]). The default plan never consults
    /// it: all rates are zero.
    rng: SplitMix64,
    /// Per-site background failure probability in 1/65536 units.
    rates: [u16; FaultSite::COUNT],
    translate_pcs: BTreeSet<u64>,
    lower_pcs: BTreeSet<u64>,
    corrupt_pcs: BTreeSet<u64>,
    host_calls: BTreeSet<String>,
    syscall_nths: BTreeSet<u64>,
    install_nths: BTreeSet<u64>,
}

impl FaultPlan {
    /// A plan whose background rolls are driven by `seed` through the
    /// workspace-shared [`SplitMix64`] stream (nearby seeds give
    /// unrelated streams).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { rng: SplitMix64::new(seed), ..FaultPlan::default() }
    }

    /// Always fail frontend translation of the block starting at `pc`.
    #[must_use]
    pub fn fail_translate_at(mut self, pc: u64) -> Self {
        self.translate_pcs.insert(pc);
        self
    }

    /// Always fail backend lowering of the block starting at `pc`.
    #[must_use]
    pub fn fail_lower_at(mut self, pc: u64) -> Self {
        self.lower_pcs.insert(pc);
        self
    }

    /// Corrupt the installed translation of the block at `pc` once,
    /// after it is first installed. Detection discards and re-translates.
    #[must_use]
    pub fn corrupt_tb_at(mut self, pc: u64) -> Self {
        self.corrupt_pcs.insert(pc);
        self
    }

    /// Fail linking of host-library export `name`: the import stays on
    /// its translated guest implementation.
    #[must_use]
    pub fn fail_host_call(mut self, name: &str) -> Self {
        self.host_calls.insert(name.to_owned());
        self
    }

    /// Reject the `nth` serviced syscall (0-based, counted across all
    /// cores) with a typed error.
    #[must_use]
    pub fn fail_syscall_at(mut self, nth: u64) -> Self {
        self.syscall_nths.insert(nth);
        self
    }

    /// Flip one byte of the `nth` code install (0-based, counted across
    /// the run, superblocks included) immediately after the bytes land
    /// in the code cache. The damage is only *detected* when the
    /// verifier's install-time read-back check is enabled
    /// ([`VerifyLevel::Install`](crate::VerifyLevel) or stronger), so
    /// this knob is never part of the background-rate sweeps.
    #[must_use]
    pub fn corrupt_install_at(mut self, nth: u64) -> Self {
        self.install_nths.insert(nth);
        self
    }

    /// Sets the background failure probability of `site` to
    /// `per_64k` / 65536 per decision.
    #[must_use]
    pub fn rate(mut self, site: FaultSite, per_64k: u16) -> Self {
        self.rates[site.index()] = per_64k;
        self
    }

    fn roll(&mut self, site: FaultSite) -> bool {
        let rate = self.rates[site.index()];
        rate != 0 && self.rng.below(65536) < rate as u64
    }

    /// Whether frontend translation of the block at `pc` fails now.
    pub fn translate_fails(&mut self, pc: u64) -> bool {
        self.translate_pcs.contains(&pc) || self.roll(FaultSite::Translate)
    }

    /// Whether backend lowering of the block at `pc` fails now.
    pub fn lower_fails(&mut self, pc: u64) -> bool {
        self.lower_pcs.contains(&pc) || self.roll(FaultSite::Lower)
    }

    /// Whether a background TB-cache corruption/eviction strikes now.
    pub fn tb_cache_strikes(&mut self) -> bool {
        self.roll(FaultSite::TbCache)
    }

    /// Takes (and consumes) the explicit one-shot corruption for `pc`.
    pub fn take_corrupt_tb(&mut self, pc: u64) -> bool {
        self.corrupt_pcs.remove(&pc)
    }

    /// Takes (and consumes) the planned install-time corruption for the
    /// `nth` install, if any.
    pub fn take_install_corruption(&mut self, nth: u64) -> bool {
        self.install_nths.remove(&nth)
    }

    /// Guest pcs with a pending explicit corruption.
    pub fn pending_corruptions(&self) -> Vec<u64> {
        self.corrupt_pcs.iter().copied().collect()
    }

    /// Whether linking export `name` fails now.
    pub fn host_call_fails(&mut self, name: &str) -> bool {
        self.host_calls.contains(name) || self.roll(FaultSite::HostCall)
    }

    /// Whether the `nth` serviced syscall is rejected now.
    pub fn syscall_fails(&mut self, nth: u64) -> bool {
        self.syscall_nths.contains(&nth) || self.roll(FaultSite::Syscall)
    }

    /// A deterministic index in `0..n` from the plan's stream (victim
    /// selection for background evictions). `n` must be non-zero.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.usize_below(n)
    }

    /// `true` if the plan can never inject anything (the default plan).
    pub fn is_empty(&self) -> bool {
        self.rates.iter().all(|&r| r == 0)
            && self.translate_pcs.is_empty()
            && self.lower_pcs.is_empty()
            && self.corrupt_pcs.is_empty()
            && self.host_calls.is_empty()
            && self.syscall_nths.is_empty()
            && self.install_nths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let mut p = FaultPlan::default();
        assert!(p.is_empty());
        for pc in 0..1000 {
            assert!(!p.translate_fails(pc));
            assert!(!p.lower_fails(pc));
            assert!(!p.tb_cache_strikes());
            assert!(!p.syscall_fails(pc));
        }
    }

    #[test]
    fn explicit_sites_fire_and_rates_are_deterministic() {
        let mut p = FaultPlan::seeded(42)
            .fail_translate_at(0x1_0000)
            .fail_host_call("sin")
            .rate(FaultSite::Translate, 6554); // ~10%
        assert!(p.translate_fails(0x1_0000));
        assert!(p.host_call_fails("sin"));
        assert!(!p.host_call_fails("cos"));

        let hits = |seed: u64| -> Vec<bool> {
            let mut p = FaultPlan::seeded(seed).rate(FaultSite::Translate, 6554);
            (0..64).map(|pc| p.translate_fails(pc)).collect()
        };
        assert_eq!(hits(42), hits(42), "same seed, same sequence");
        assert_ne!(hits(42), hits(43), "different seeds diverge");
        let n = hits(42).iter().filter(|&&b| b).count();
        assert!((1..=20).contains(&n), "~10% rate wildly off: {n}/64");
    }

    #[test]
    fn one_shot_corruption_is_consumed() {
        let mut p = FaultPlan::seeded(1).corrupt_tb_at(0x2_0000);
        assert_eq!(p.pending_corruptions(), vec![0x2_0000]);
        assert!(p.take_corrupt_tb(0x2_0000));
        assert!(!p.take_corrupt_tb(0x2_0000), "fires once");
        assert!(p.pending_corruptions().is_empty());
    }
}
