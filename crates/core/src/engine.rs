//! The Risotto DBT engine: execution loop, translation-block cache,
//! setup presets, syscall layer and the dynamic host linker (§4.2, §6).
//!
//! The engine owns a [`Machine`] and drives it through events: on a
//! translation miss it decodes the guest basic block, applies the
//! configured x86→TCG mapping and optimizer, lowers it per the TCG→Arm
//! scheme and installs the host code; on a guest syscall it services the
//! virtual OS interface (write / spawn / join / exit). When host linking
//! is enabled, translating a PLT address instead emits a marshaling thunk
//! that calls the registered native host function directly (§6.2).

use crate::idl::Idl;
use risotto_guest_x86::{syscalls, GuestBinary, Gpr, DATA_BASE, STACK_SIZE, STACK_TOP, TEXT_BASE};
use risotto_host_arm::{
    lower_block, BackendConfig, CoreStats, CostModel, Event, HostInsn, Machine, MemOrder,
    NativeFn, RmwStyle, TbExitKind, Xreg, ENV_BASE, SPILL_BASE,
};
use risotto_tcg::{optimize_with, translate_block, FrontendConfig, OptPolicy, PassConfig, TranslateError};
use std::collections::HashMap;
use std::fmt;

/// Per-core guest env block base (20 regs × 8 bytes, padded to 0x100).
pub const ENV_REGION: u64 = 0xF000_0000;
/// Per-core spill area base (temp index × 8).
pub const SPILL_REGION: u64 = 0xF800_0000;
const ENV_STRIDE: u64 = 0x100;
const SPILL_STRIDE: u64 = 0x10000;

/// The evaluation setups of §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setup {
    /// Vanilla QEMU 6.1: leading fences (Fig. 2), fence-oblivious
    /// optimizer, helper-call RMWs.
    Qemu,
    /// QEMU with all guest-ordering fences removed — incorrect, used only
    /// as the performance oracle.
    NoFences,
    /// QEMU with the verified mappings (Fig. 7) and sound optimizations,
    /// but still helper-call RMWs.
    TcgVer,
    /// Full Risotto: verified mappings, fence merging, direct `casal`
    /// CAS (§6.3), dynamic host linker (§6.2).
    Risotto,
    /// Native-oracle execution of the same program (see
    /// [`BackendConfig::native`]).
    Native,
}

impl Setup {
    /// All five setups, in the paper's presentation order.
    pub const ALL: [Setup; 5] =
        [Setup::Qemu, Setup::NoFences, Setup::TcgVer, Setup::Risotto, Setup::Native];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Setup::Qemu => "qemu",
            Setup::NoFences => "no-fences",
            Setup::TcgVer => "tcg-ver",
            Setup::Risotto => "risotto",
            Setup::Native => "native",
        }
    }

    fn frontend(self) -> FrontendConfig {
        match self {
            Setup::Qemu => FrontendConfig::qemu(),
            Setup::NoFences => FrontendConfig::no_fences(),
            Setup::TcgVer => FrontendConfig::tcg_ver(),
            Setup::Risotto => FrontendConfig::risotto(),
            // The native oracle compiles from the same source; ordering
            // comes from its own (Arm) primitives, not inserted fences.
            Setup::Native => FrontendConfig::no_fences(),
        }
    }

    fn opt_policy(self) -> OptPolicy {
        match self {
            Setup::Qemu | Setup::NoFences => OptPolicy::QemuUnsound,
            _ => OptPolicy::Verified,
        }
    }

    fn backend(self) -> BackendConfig {
        match self {
            Setup::Native => BackendConfig::native(),
            // QEMU's helpers use casal with GCC ≥ 10 (§3.1); the RMW style
            // here only affects direct `Cas` ops, which exist in the
            // Risotto/NoFences frontends.
            _ => BackendConfig::dbt(RmwStyle::Casal),
        }
    }

    /// Whether the dynamic host linker is active (§6.2).
    pub fn host_linking(self) -> bool {
        matches!(self, Setup::Risotto | Setup::Native)
    }
}

/// A native host shared library: named functions over machine memory.
pub struct HostLibrary {
    /// Library name (diagnostic only).
    pub name: String,
    /// Exported functions.
    pub funcs: Vec<(String, NativeFn)>,
}

impl fmt::Debug for HostLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostLibrary")
            .field("name", &self.name)
            .field("funcs", &self.funcs.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>())
            .finish()
    }
}

/// Engine errors.
#[derive(Debug)]
pub enum EmuError {
    /// Guest instruction decoding failed during translation.
    Translate(TranslateError),
    /// The step budget was exhausted.
    OutOfFuel,
    /// `spawn` with no idle core left.
    TooManyThreads,
    /// Unknown guest syscall.
    BadSyscall(u64),
    /// `join` on an invalid thread.
    BadJoin(u64),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Translate(e) => write!(f, "translation failed: {e}"),
            EmuError::OutOfFuel => write!(f, "execution budget exhausted"),
            EmuError::TooManyThreads => write!(f, "spawn: no idle core"),
            EmuError::BadSyscall(n) => write!(f, "unknown syscall {n}"),
            EmuError::BadJoin(t) => write!(f, "join on invalid thread {t}"),
        }
    }
}

impl std::error::Error for EmuError {}

impl From<TranslateError> for EmuError {
    fn from(e: TranslateError) -> Self {
        EmuError::Translate(e)
    }
}

/// The result of a completed emulation.
#[derive(Debug, Clone)]
pub struct Report {
    /// Parallel runtime in simulated cycles (max core clock).
    pub cycles: u64,
    /// Translated blocks.
    pub tb_count: usize,
    /// Bytes of generated host code.
    pub code_bytes: usize,
    /// Aggregated core statistics.
    pub stats: CoreStats,
    /// Exit value per core (`None` if the core never ran).
    pub exit_vals: Vec<Option<u64>>,
    /// Bytes written via the `WRITE` syscall.
    pub output: Vec<u8>,
}

/// The DBT engine.
#[derive(Debug)]
pub struct Emulator {
    setup: Setup,
    machine: Machine,
    text: Vec<u8>,
    entry: u64,
    /// PLT vaddr → (native function id, arity) for host-linked imports.
    plt_natives: HashMap<u64, (u16, usize)>,
    exit_vals: Vec<Option<u64>>,
    output: Vec<u8>,
    tb_count: usize,
    core_started: Vec<bool>,
    passes: PassConfig,
    rmw_style: RmwStyle,
}

impl Emulator {
    /// Loads a guest binary under the given setup.
    pub fn new(binary: &GuestBinary, setup: Setup, n_cores: usize, cost: CostModel) -> Emulator {
        let mut machine = Machine::new(n_cores, cost);
        machine.mem.write_bytes(TEXT_BASE, &binary.text);
        machine.mem.write_bytes(DATA_BASE, &binary.data);
        Emulator {
            setup,
            machine,
            text: binary.text.clone(),
            entry: binary.entry,
            plt_natives: HashMap::new(),
            exit_vals: vec![None; n_cores],
            output: Vec::new(),
            tb_count: 0,
            core_started: vec![false; n_cores],
            passes: PassConfig::all(),
            rmw_style: RmwStyle::Casal,
        }
    }

    /// Overrides how direct TCG `Cas`/`AtomicAdd` ops are lowered (§6.3
    /// ablation): `casal` vs the `DMBFF; RMW2; DMBFF` exclusive loop. Only
    /// affects setups whose frontend emits direct RMW ops (risotto,
    /// no-fences).
    pub fn set_rmw_style(&mut self, style: RmwStyle) {
        self.rmw_style = style;
    }

    /// Overrides the optimizer pass configuration (ablation studies).
    pub fn set_passes(&mut self, passes: PassConfig) {
        self.passes = passes;
    }

    /// The active setup.
    pub fn setup(&self) -> Setup {
        self.setup
    }

    /// Read access to guest/machine memory (for assertions).
    pub fn mem(&self) -> &risotto_guest_x86::SparseMem {
        &self.machine.mem
    }

    /// Links a host library against the binary's imports (§6.2): every
    /// `.dynsym` entry that both appears in `idl` and is exported by `lib`
    /// gets its PLT entry redirected to the native function. No-op unless
    /// the setup enables host linking.
    ///
    /// Returns the names actually linked.
    pub fn link_library(&mut self, binary: &GuestBinary, idl: &Idl, lib: HostLibrary) -> Vec<String> {
        if !self.setup.host_linking() {
            return Vec::new();
        }
        let mut linked = Vec::new();
        for (name, f) in lib.funcs {
            let Some(func) = idl.lookup(&name) else { continue };
            let Some(sym) = binary.dynsyms.iter().find(|d| d.name == name) else { continue };
            let id = self.machine.register_native(f);
            self.plt_natives.insert(sym.plt_vaddr, (id, func.params.len()));
            linked.push(name);
        }
        linked
    }

    fn env_base(core: usize) -> u64 {
        ENV_REGION + core as u64 * ENV_STRIDE
    }

    fn env_addr(core: usize, reg: u8) -> u64 {
        Self::env_base(core) + reg as u64 * 8
    }

    fn read_guest_reg(&self, core: usize, reg: Gpr) -> u64 {
        if self.setup == Setup::Native {
            self.machine.reg(core, Xreg(6 + reg.0))
        } else {
            self.machine.mem.read_u64(Self::env_addr(core, reg.0))
        }
    }

    fn write_guest_reg(&mut self, core: usize, reg: Gpr, val: u64) {
        if self.setup == Setup::Native {
            self.machine.set_reg(core, Xreg(6 + reg.0), val);
        } else {
            self.machine.mem.write_u64(Self::env_addr(core, reg.0), val);
        }
    }

    fn init_core(&mut self, core: usize, arg: Option<u64>) {
        let stack_top = STACK_TOP - core as u64 * STACK_SIZE;
        if self.setup == Setup::Native {
            for g in 0..16 {
                self.machine.set_reg(core, Xreg(6 + g), 0);
            }
        } else {
            for r in 0..risotto_tcg::env::COUNT as u8 {
                self.machine.mem.write_u64(Self::env_addr(core, r), 0);
            }
            self.machine.set_reg(core, ENV_BASE, Self::env_base(core));
        }
        self.machine
            .set_reg(core, SPILL_BASE, SPILL_REGION + core as u64 * SPILL_STRIDE);
        self.write_guest_reg(core, Gpr::RSP, stack_top);
        if let Some(a) = arg {
            self.write_guest_reg(core, Gpr::RDI, a);
        }
        self.core_started[core] = true;
    }

    /// Ensures a translation exists for `guest_pc`; returns its host pc.
    fn ensure_translated(&mut self, guest_pc: u64) -> Result<u64, EmuError> {
        if let Some(host) = self.machine.lookup_tb(guest_pc) {
            return Ok(host);
        }
        let code = if let Some(&(func, nargs)) = self.plt_natives.get(&guest_pc) {
            self.build_native_thunk(func, nargs)
        } else {
            let text = &self.text;
            let fetch = |addr: u64| -> [u8; 16] {
                let mut w = [0u8; 16];
                if addr >= TEXT_BASE {
                    let off = (addr - TEXT_BASE) as usize;
                    for (i, slot) in w.iter_mut().enumerate() {
                        *slot = text.get(off + i).copied().unwrap_or(0);
                    }
                }
                w
            };
            let mut block = translate_block(guest_pc, self.setup.frontend(), fetch)?;
            optimize_with(&mut block, self.setup.opt_policy(), self.passes);
            let mut backend = self.setup.backend();
            if self.setup != Setup::Native {
                backend.rmw = self.rmw_style;
            }
            lower_block(&block, backend)
        };
        let host = self.machine.install_code(&code);
        self.machine.map_tb(guest_pc, host);
        self.tb_count += 1;
        Ok(host)
    }

    /// Builds the marshaling thunk that calls a native host function from
    /// guest code (§6.2): copy guest argument registers into the host
    /// ABI's, call, write the result back, and perform the guest `ret`.
    fn build_native_thunk(&self, func: u16, nargs: usize) -> Vec<HostInsn> {
        let mut code = Vec::new();
        if self.setup == Setup::Native {
            // Native ABI: direct register moves, no memory marshaling.
            for (i, g) in Gpr::ARGS.iter().take(nargs).enumerate() {
                code.push(HostInsn::MovReg { dst: Xreg(i as u8), src: Xreg(6 + g.0) });
            }
            code.push(HostInsn::NativeCall { func });
            code.push(HostInsn::MovReg { dst: Xreg(6 + Gpr::RAX.0), src: Xreg(0) });
            // ret: pop the return address from the guest stack (RSP = X10).
            let rsp = Xreg(6 + Gpr::RSP.0);
            code.push(HostInsn::Ldr { dst: Xreg(29), base: rsp, off: 0, order: MemOrder::Plain });
            code.push(HostInsn::AluImm {
                op: risotto_host_arm::AOp::Add,
                dst: rsp,
                a: rsp,
                imm: 8,
            });
            code.push(HostInsn::ExitTb(TbExitKind::JumpReg { reg: Xreg(29) }));
        } else {
            // DBT ABI: marshal through the env block — this load/store
            // traffic *is* the marshaling overhead visible in Fig. 14.
            for (i, g) in Gpr::ARGS.iter().take(nargs).enumerate() {
                code.push(HostInsn::Ldr {
                    dst: Xreg(i as u8),
                    base: ENV_BASE,
                    off: g.0 as i32 * 8,
                    order: MemOrder::Plain,
                });
            }
            code.push(HostInsn::NativeCall { func });
            code.push(HostInsn::Str {
                src: Xreg(0),
                base: ENV_BASE,
                off: Gpr::RAX.0 as i32 * 8,
                order: MemOrder::Plain,
            });
            // Guest ret through the env'd RSP.
            code.push(HostInsn::Ldr {
                dst: Xreg(25),
                base: ENV_BASE,
                off: Gpr::RSP.0 as i32 * 8,
                order: MemOrder::Plain,
            });
            code.push(HostInsn::Ldr { dst: Xreg(26), base: Xreg(25), off: 0, order: MemOrder::Plain });
            code.push(HostInsn::AluImm {
                op: risotto_host_arm::AOp::Add,
                dst: Xreg(25),
                a: Xreg(25),
                imm: 8,
            });
            code.push(HostInsn::Str {
                src: Xreg(25),
                base: ENV_BASE,
                off: Gpr::RSP.0 as i32 * 8,
                order: MemOrder::Plain,
            });
            code.push(HostInsn::ExitTb(TbExitKind::JumpReg { reg: Xreg(26) }));
        }
        code
    }

    fn service_syscall(&mut self, core: usize, next: u64) -> Result<(), EmuError> {
        let n = self.read_guest_reg(core, Gpr::RAX);
        let a1 = self.read_guest_reg(core, Gpr::RDI);
        let a2 = self.read_guest_reg(core, Gpr::RSI);
        let a3 = self.read_guest_reg(core, Gpr::RDX);
        match n {
            syscalls::EXIT => {
                self.exit_vals[core] = Some(a1);
                self.machine.halt_core(core);
                return Ok(());
            }
            syscalls::WRITE => {
                let bytes = self.machine.mem.read_bytes(a2, a3 as usize);
                self.output.extend_from_slice(&bytes);
                self.write_guest_reg(core, Gpr::RAX, a3);
            }
            syscalls::SPAWN => {
                let child = self.machine.idle_core().ok_or(EmuError::TooManyThreads)?;
                self.init_core(child, Some(a2));
                let host = self.ensure_translated(a1)?;
                self.machine.start_core(child, host);
                // The child begins *now*, not at machine time zero — it
                // inherits the spawning core's clock (plus a small fork
                // cost), so the discrete-event scheduler interleaves it
                // realistically.
                self.machine.add_cycles(child, self.machine.core_cycles(core) + 50);
                self.write_guest_reg(core, Gpr::RAX, child as u64);
            }
            syscalls::JOIN => {
                let target = a1 as usize;
                if target >= self.machine.n_cores() || target == core {
                    return Err(EmuError::BadJoin(a1));
                }
                if self.machine.core_halted(target) && self.core_started[target] {
                    let v = self.exit_vals[target].unwrap_or(0);
                    self.write_guest_reg(core, Gpr::RAX, v);
                } else {
                    // Busy-wait: charge some cycles and retry the syscall.
                    self.machine.add_cycles(core, 64);
                    return Ok(());
                }
            }
            syscalls::GETTID => {
                self.write_guest_reg(core, Gpr::RAX, core as u64);
            }
            other => return Err(EmuError::BadSyscall(other)),
        }
        let host = self.ensure_translated(next)?;
        self.machine.set_pc(core, host);
        Ok(())
    }

    /// Runs the program to completion (all threads halted).
    ///
    /// # Errors
    ///
    /// Translation faults, runaway execution (`fuel` steps), and syscall
    /// misuse.
    pub fn run(&mut self, fuel: u64) -> Result<Report, EmuError> {
        self.init_core(0, None);
        let entry = self.entry;
        let host = self.ensure_translated(entry)?;
        self.machine.start_core(0, host);
        loop {
            match self.machine.run(fuel) {
                Event::AllHalted => break,
                Event::TranslationMiss { guest_pc, .. } => {
                    self.ensure_translated(guest_pc)?;
                }
                Event::GuestSyscall { core, next } => {
                    self.service_syscall(core, next)?;
                }
                Event::OutOfFuel => return Err(EmuError::OutOfFuel),
            }
        }
        // HLT'd threads report guest RAX as their exit value.
        for core in 0..self.machine.n_cores() {
            if self.core_started[core] && self.exit_vals[core].is_none() {
                self.exit_vals[core] = Some(self.read_guest_reg(core, Gpr::RAX));
            }
        }
        Ok(Report {
            cycles: self.machine.clock(),
            tb_count: self.tb_count,
            code_bytes: self.machine.code_size(),
            stats: self.machine.total_stats(),
            exit_vals: self.exit_vals.clone(),
            output: self.output.clone(),
        })
    }
}
