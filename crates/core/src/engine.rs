//! The Risotto DBT engine: execution loop, translation-block cache,
//! setup presets, syscall layer and the dynamic host linker (§4.2, §6).
//!
//! The engine owns a [`Machine`] and drives it through events: on a
//! translation miss it decodes the guest basic block, applies the
//! configured x86→TCG mapping and optimizer, lowers it per the TCG→Arm
//! scheme and installs the host code; on a guest syscall it services the
//! virtual OS interface (write / spawn / join / exit). When host linking
//! is enabled, translating a PLT address instead emits a marshaling thunk
//! that calls the registered native host function directly (§6.2).
//!
//! ## Failure model
//!
//! The pipeline is panic-free: every layer failure — decoder, optimizer
//! backend, TB cache, host linker, syscall layer — is either *recovered*
//! or surfaced as a typed [`EmuError`]. Translation and lowering failures
//! (real or injected via [`FaultPlan`]) quarantine the guest pc and fall
//! back to direct interpretation of that block, with a bounded number of
//! re-translation retries; detected TB-cache corruption discards the
//! entry and re-translates; failed host-library links fall back to the
//! translated guest implementation behind the PLT stub. Under any fault
//! plan a run either completes with the same observable output as the
//! fault-free run, or returns a typed error — never a silently wrong
//! result. See DESIGN.md §11.

use crate::faults::{FaultPlan, FaultSite};
use crate::idl::Idl;
use crate::obs::{HotTb, MetricsSnapshot, NullSink, Obs, TraceSink, TraceStage};
use risotto_analysis::{analyze_image, content_hash, event_sites, ir_hints, ImageFacts};
use risotto_guest_x86::{
    syscalls, AluOp, Flags, Gpr, GuestBinary, Insn, Operand, DATA_BASE, STACK_SIZE, STACK_TOP,
    TEXT_BASE,
};
use risotto_host_arm::{
    AllocStats, ArmBackend, AtomicEvent, BackendConfig, ChainStats, CoreStats, CostModel, Event,
    HostBackend, HostFaultKind, HostInsn, Machine, MemOrder, NativeFn, OrderingLowering, RmwStyle,
    SchedPolicy, TbExitKind, Xreg, ENV_BASE, SPILL_BASE,
};
use risotto_host_tso::TsoBackend;
use risotto_memmodel::FenceKind;
use risotto_tcg::{
    apply_hints, env, optimize_with, superblock, translate_block, verify as tcg_verify,
    FrontendConfig, HintStats, OptPolicy, OptStats, PassConfig, TbExit, TcgBlock, TcgOp,
    TranslateError, VerifyError, VerifyPass,
};
use risotto_template::{translate_block_template, TemplateError};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-core guest env block base (20 regs × 8 bytes, padded to 0x100).
pub const ENV_REGION: u64 = 0xF000_0000;
/// Per-core spill area base (temp index × 8).
pub const SPILL_REGION: u64 = 0xF800_0000;
const ENV_STRIDE: u64 = 0x100;
const SPILL_STRIDE: u64 = 0x10000;

/// How many times a failing block is re-offered to the translator before
/// it is permanently interpreted.
const QUARANTINE_RETRY_LIMIT: u32 = 3;
/// Upper bound on tracked quarantined pcs; beyond it the
/// least-recently-touched entry is evicted (see [`Quarantine`]).
const QUARANTINE_CAPACITY: usize = 1024;
/// Cycle cost charged per interpreted guest instruction (interpretation
/// is roughly an order of magnitude slower than translated code).
const INTERP_CYCLES_PER_INSN: u64 = 12;
/// Interpreted basic blocks are capped like translated ones.
const MAX_INTERP_BLOCK: usize = 64;
/// Bound on the process-wide analysis cache; reaching it clears the
/// cache (simple and safe — facts are recomputable).
const ANALYSIS_CACHE_CAPACITY: usize = 256;

/// Process-wide whole-program-analysis cache keyed by image content
/// hash, shared across emulator instances so a bench pipeline or fuzz
/// campaign analyses each distinct image once (docs/ANALYSIS.md).
static ANALYSIS_CACHE: OnceLock<Mutex<HashMap<u64, Arc<ImageFacts>>>> = OnceLock::new();

/// Cache lookup; returns the facts plus whether the lookup hit.
fn cached_analysis(bin: &GuestBinary) -> (Arc<ImageFacts>, bool) {
    let hash = content_hash(bin);
    let cache = ANALYSIS_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(f) = map.get(&hash) {
        return (Arc::clone(f), true);
    }
    if map.len() >= ANALYSIS_CACHE_CAPACITY {
        map.clear();
    }
    let facts = Arc::new(analyze_image(bin));
    map.insert(hash, Arc::clone(&facts));
    (facts, false)
}

/// The evaluation setups of §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setup {
    /// Vanilla QEMU 6.1: leading fences (Fig. 2), fence-oblivious
    /// optimizer, helper-call RMWs.
    Qemu,
    /// QEMU with all guest-ordering fences removed — incorrect, used only
    /// as the performance oracle.
    NoFences,
    /// QEMU with the verified mappings (Fig. 7) and sound optimizations,
    /// but still helper-call RMWs.
    TcgVer,
    /// Full Risotto: verified mappings, fence merging, direct `casal`
    /// CAS (§6.3), dynamic host linker (§6.2).
    Risotto,
    /// Native-oracle execution of the same program (see
    /// [`BackendConfig::native`]).
    Native,
}

impl Setup {
    /// All five setups, in the paper's presentation order.
    pub const ALL: [Setup; 5] =
        [Setup::Qemu, Setup::NoFences, Setup::TcgVer, Setup::Risotto, Setup::Native];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Setup::Qemu => "qemu",
            Setup::NoFences => "no-fences",
            Setup::TcgVer => "tcg-ver",
            Setup::Risotto => "risotto",
            Setup::Native => "native",
        }
    }

    fn frontend(self) -> FrontendConfig {
        match self {
            Setup::Qemu => FrontendConfig::qemu(),
            Setup::NoFences => FrontendConfig::no_fences(),
            Setup::TcgVer => FrontendConfig::tcg_ver(),
            Setup::Risotto => FrontendConfig::risotto(),
            // The native oracle compiles from the same source; ordering
            // comes from its own (Arm) primitives, not inserted fences.
            Setup::Native => FrontendConfig::no_fences(),
        }
    }

    fn opt_policy(self) -> OptPolicy {
        match self {
            Setup::Qemu | Setup::NoFences => OptPolicy::QemuUnsound,
            _ => OptPolicy::Verified,
        }
    }

    fn backend(self) -> BackendConfig {
        match self {
            Setup::Native => BackendConfig::native(),
            // QEMU's helpers use casal with GCC ≥ 10 (§3.1); the RMW style
            // here only affects direct `Cas` ops, which exist in the
            // Risotto/NoFences frontends.
            _ => BackendConfig::dbt(RmwStyle::Casal),
        }
    }

    /// Whether the dynamic host linker is active (§6.2).
    pub fn host_linking(self) -> bool {
        matches!(self, Setup::Risotto | Setup::Native)
    }
}

/// Which [`HostBackend`] translates, verifies and costs the host code
/// (docs/BACKENDS.md). Selected via [`Emulator::set_backend`] and the
/// bench bins' `--backend` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The MiniArm weak-memory host (`risotto-host-arm`) — the paper's
    /// ThunderX2 stand-in and the default.
    #[default]
    Arm,
    /// The MiniTSO (x86-TSO) host (`risotto-host-tso`): most fences are
    /// free, only store→load obligations emit `MFENCE`.
    Tso,
}

impl BackendKind {
    /// Both backends, Arm first (the cross-backend differential oracle
    /// iterates this).
    pub const ALL: [BackendKind; 2] = [BackendKind::Arm, BackendKind::Tso];

    /// The flag/artifact name (`"arm"` / `"tso"`).
    pub fn name(self) -> &'static str {
        self.host().name()
    }

    /// Parses a `--backend` flag value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "arm" => Some(BackendKind::Arm),
            "tso" => Some(BackendKind::Tso),
            _ => None,
        }
    }

    /// The backend implementation behind this kind.
    pub fn host(self) -> &'static dyn HostBackend {
        match self {
            BackendKind::Arm => &ArmBackend,
            BackendKind::Tso => &TsoBackend,
        }
    }

    /// The ordering dialect behind this kind — the fence/RMW lowering
    /// hooks shared by the tier-1 lowering driver and the tier-0
    /// template translator.
    pub fn ordering(self) -> &'static dyn OrderingLowering {
        match self {
            BackendKind::Arm => &ArmBackend,
            BackendKind::Tso => &TsoBackend,
        }
    }

    /// This backend's calibrated cycle model (feed it to
    /// [`Emulator::new`] so the simulated machine prices instructions
    /// as this host would).
    pub fn cost_model(self) -> CostModel {
        self.host().cost_model()
    }
}

/// One exported function of a [`HostLibrary`].
pub struct HostExport {
    /// Exported name, as imported by guest `.dynsym` entries.
    pub name: String,
    /// Number of parameters the native function expects. Checked against
    /// the IDL declaration at link time.
    pub arity: usize,
    /// The native implementation.
    pub func: NativeFn,
}

impl fmt::Debug for HostExport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostExport").field("name", &self.name).field("arity", &self.arity).finish()
    }
}

/// A native host shared library: named functions over machine memory.
pub struct HostLibrary {
    /// Library name (diagnostic only).
    pub name: String,
    /// Exported functions.
    pub funcs: Vec<HostExport>,
}

impl HostLibrary {
    /// An empty library named `name`.
    pub fn new(name: &str) -> HostLibrary {
        HostLibrary { name: name.to_owned(), funcs: Vec::new() }
    }

    /// Adds an export (builder style).
    #[must_use]
    pub fn export(mut self, name: &str, arity: usize, func: NativeFn) -> Self {
        self.funcs.push(HostExport { name: name.to_owned(), arity, func });
        self
    }
}

impl fmt::Debug for HostLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostLibrary")
            .field("name", &self.name)
            .field("funcs", &self.funcs.iter().map(|e| e.name.clone()).collect::<Vec<_>>())
            .finish()
    }
}

/// Errors from [`Emulator::link_library`]. Linking is atomic: on error,
/// nothing from the offending library is linked.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The library exports a symbol the IDL does not describe; without a
    /// signature the linker cannot marshal its arguments.
    NotInIdl {
        /// Offending library.
        library: String,
        /// The undescribed symbol.
        symbol: String,
    },
    /// The library exports the same name twice.
    DuplicateExport {
        /// Offending library.
        library: String,
        /// The duplicated symbol.
        symbol: String,
    },
    /// The export's parameter count disagrees with the IDL declaration.
    ArityMismatch {
        /// Offending library.
        library: String,
        /// The mismatched symbol.
        symbol: String,
        /// Parameter count per the IDL.
        idl: usize,
        /// Parameter count per the export.
        export: usize,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::NotInIdl { library, symbol } => {
                write!(f, "{library}: export `{symbol}` is not described by the IDL")
            }
            LinkError::DuplicateExport { library, symbol } => {
                write!(f, "{library}: export `{symbol}` appears more than once")
            }
            LinkError::ArityMismatch { library, symbol, idl, export } => write!(
                f,
                "{library}: export `{symbol}` takes {export} argument(s) but the IDL declares {idl}"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// One core's state at the moment of a stall (see [`EmuError::Stalled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreDump {
    /// Core index.
    pub core: usize,
    /// Host pc the core was executing.
    pub host_pc: u64,
    /// The core's local clock.
    pub cycles: u64,
    /// Whether the core had halted.
    pub halted: bool,
}

impl fmt::Display for CoreDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} at host pc {:#x}, {} cycles{}",
            self.core,
            self.host_pc,
            self.cycles,
            if self.halted { ", halted" } else { "" }
        )
    }
}

/// Engine errors. Every variant carries enough context to locate the
/// failure: guest pc, core, and the failing layer.
#[non_exhaustive]
#[derive(Debug)]
pub enum EmuError {
    /// Guest instruction decoding failed during translation *and* the
    /// interpreter fallback could not execute the block either (the guest
    /// bytes themselves are undecodable).
    Translate {
        /// The underlying frontend fault (also via
        /// [`std::error::Error::source`]).
        source: TranslateError,
        /// Core that needed the block, if known.
        core: Option<usize>,
        /// Translation-block count at the time of failure.
        tb_count: usize,
    },
    /// The step budget was exhausted.
    OutOfFuel,
    /// `spawn` with no idle core left.
    TooManyThreads {
        /// Core performing the spawn.
        core: usize,
        /// Guest pc following the spawn syscall.
        pc: u64,
    },
    /// Unknown guest syscall.
    BadSyscall {
        /// The unknown syscall number.
        n: u64,
        /// Core performing the syscall.
        core: usize,
        /// Guest pc following the syscall.
        pc: u64,
    },
    /// `join` on an invalid thread.
    BadJoin {
        /// The invalid target thread id.
        tid: u64,
        /// Core performing the join.
        core: usize,
        /// Guest pc following the syscall.
        pc: u64,
    },
    /// The livelock watchdog fired: no observable progress (new
    /// translation, completed syscall, output, or core exit) for the
    /// configured number of machine steps. Carries a per-core state dump.
    Stalled {
        /// Machine steps executed since the last observable progress.
        steps: u64,
        /// Per-core state at detection time.
        cores: Vec<CoreDump>,
    },
    /// An injected, non-recoverable fault (see [`FaultPlan`]); only the
    /// syscall layer produces these — translation-side injections are
    /// absorbed by the interpreter fallback.
    Injected {
        /// The faulting pipeline layer.
        site: FaultSite,
        /// Core that hit the fault.
        core: usize,
        /// Guest pc at (or just after) the fault.
        pc: u64,
    },
    /// The host machine hit unexecutable state (undecodable host bytes,
    /// an unknown helper or native index). The generated code itself is
    /// broken, so there is no safe re-execution point.
    HostFault {
        /// What kind of host fault.
        kind: HostFaultKind,
        /// The faulting core.
        core: usize,
        /// Host pc of the faulting instruction.
        host_pc: u64,
        /// Guest pc of the containing translation block, if it could be
        /// recovered from the TB map.
        guest_pc: Option<u64>,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Translate { source, core, tb_count } => {
                write!(f, "translation failed: {source}")?;
                if let Some(c) = core {
                    write!(f, " (core {c})")?;
                }
                write!(f, " after {tb_count} TBs")
            }
            EmuError::OutOfFuel => write!(f, "execution budget exhausted"),
            EmuError::TooManyThreads { core, pc } => {
                write!(f, "spawn on core {core} near guest pc {pc:#x}: no idle core")
            }
            EmuError::BadSyscall { n, core, pc } => {
                write!(f, "unknown syscall {n} on core {core} near guest pc {pc:#x}")
            }
            EmuError::BadJoin { tid, core, pc } => {
                write!(f, "join on invalid thread {tid} (core {core}, near guest pc {pc:#x})")
            }
            EmuError::Stalled { steps, cores } => {
                write!(f, "no progress for {steps} steps:")?;
                for d in cores {
                    write!(f, " [{d}]")?;
                }
                Ok(())
            }
            EmuError::Injected { site, core, pc } => {
                write!(f, "injected {site} fault on core {core} near guest pc {pc:#x}")
            }
            EmuError::HostFault { kind, core, host_pc, guest_pc } => {
                write!(f, "host fault {kind:?} on core {core} at host pc {host_pc:#x}")?;
                match guest_pc {
                    Some(g) => write!(f, " (TB for guest pc {g:#x})"),
                    None => write!(f, " (unmapped host code)"),
                }
            }
        }
    }
}

impl std::error::Error for EmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmuError::Translate { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The result of a completed emulation.
#[derive(Debug, Clone)]
pub struct Report {
    /// Parallel runtime in simulated cycles (max core clock).
    pub cycles: u64,
    /// Translated blocks.
    pub tb_count: usize,
    /// Bytes of generated host code.
    pub code_bytes: usize,
    /// Aggregated core statistics.
    pub stats: CoreStats,
    /// Exit value per core (`None` if the core never ran).
    pub exit_vals: Vec<Option<u64>>,
    /// Bytes written via the `WRITE` syscall.
    pub output: Vec<u8>,
    /// Blocks that entered interpreter fallback after a translation or
    /// lowering failure (quarantine episodes).
    pub fallback_blocks: usize,
    /// Translations performed beyond a block's first: cache-eviction /
    /// corruption refills plus bounded retries of quarantined blocks.
    pub retranslations: usize,
    /// TB-chaining and dispatcher counters from the host machine.
    pub chain: ChainStats,
    /// Aggregated optimizer statistics over every translated block.
    /// Tier-1 only — region passes over superblocks report under
    /// [`Report::sb`] so non-tiered totals are unaffected by tiering.
    pub opt: OptStats,
    /// Tier-2 superblock statistics (all zero unless
    /// [`Emulator::set_tiering`] enabled promotion).
    pub sb: SbStats,
    /// Tier-0 template-translation statistics (all zero unless
    /// [`TierConfig::warm_threshold`] enabled the template tier).
    pub template: TemplateStats,
}

/// Tier-2 promotion policy, enabled via [`Emulator::set_tiering`].
///
/// A profiled block whose entry count crosses `hot_threshold` becomes a
/// promotion candidate: the engine walks its dominant successor chain
/// (direct jumps always, conditional exits only when the profile is
/// decisively biased), stitches up to `max_tbs` tier-1 blocks into one
/// superblock, re-runs the full optimizer over the region — fence
/// merging and memory-access eliminations now firing *across* former TB
/// boundaries — and installs the result over the head, evicting the
/// subsumed tier-1 bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Entry count at which a block becomes a candidate. Every multiple
    /// re-fires the event, so a declined candidate that stays hot is
    /// re-offered later.
    pub hot_threshold: u64,
    /// Maximum tier-1 blocks merged into one superblock.
    pub max_tbs: usize,
    /// Minimum trace length worth promoting (clamped to ≥ 2: a
    /// one-block "superblock" is just the tier-1 body again).
    pub min_tbs: usize,
    /// `Some(w)` enables the tier-0 template tier: cold blocks are first
    /// translated by IR-less template instantiation (`risotto-template`)
    /// and re-translated through the full tier-1 pipeline once their
    /// entry count crosses `w`. `None` (the default) keeps the two-tier
    /// engine: every block goes straight through tier-1.
    pub warm_threshold: Option<u64>,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig { hot_threshold: 512, max_tbs: 8, min_tbs: 2, warm_threshold: None }
    }
}

impl TierConfig {
    /// The machine-side profiler threshold: the smallest entry count at
    /// which any promotion decision (tier-0→1 at
    /// [`TierConfig::warm_threshold`], tier-1→2 at
    /// [`TierConfig::hot_threshold`]) can fire. The profile event
    /// re-fires at every multiple, so the engine re-checks the larger
    /// threshold on later crossings.
    fn machine_threshold(&self) -> u64 {
        match self.warm_threshold {
            Some(w) => w.min(self.hot_threshold),
            None => self.hot_threshold,
        }
    }
}

/// Tier-2 superblock counters (see `docs/METRICS.md`, `sb.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SbStats {
    /// Superblocks successfully installed.
    pub promotions: u64,
    /// Promotions abandoned mid-pipeline (stitch or lowering failure);
    /// the tier-1 translations stay untouched.
    pub failures: u64,
    /// Hot-TB events declined before stitching: trace shorter than
    /// `min_tbs`, PLT thunk, quarantined or untranslated head.
    pub declined: u64,
    /// Tier-1 blocks merged into superblocks (sum of trace lengths).
    pub tbs_merged: u64,
    /// `SideExit` guards emitted across all installed superblocks.
    pub side_exits: u64,
    /// Fence merges that crossed a former TB boundary — the cross-block
    /// wins tier-1 cannot see (subset of the region passes' merges).
    pub fences_merged_cross: u64,
    /// Tier-1 translations evicted because a superblock subsumed them.
    pub subsumed: u64,
    /// Machine transfers that entered a superblock head.
    pub entries: u64,
}

/// Tier-0 template-translation counters (see `docs/METRICS.md`,
/// `template.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateStats {
    /// Blocks translated by template instantiation.
    pub blocks: u64,
    /// Guest instructions covered by template translations.
    pub insns: u64,
    /// Template blocks re-translated through the tier-1 IR pipeline
    /// after crossing [`TierConfig::warm_threshold`].
    pub promotions: u64,
    /// Tier-0→1 promotions that failed (injected fault or pipeline
    /// error); the template translation stays installed.
    pub promotion_failures: u64,
}

impl Report {
    /// Fraction of direct-jump exits resolved through a patched chain
    /// slot rather than the dispatcher (0.0 when no direct exits ran).
    pub fn chain_hit_rate(&self) -> f64 {
        let total = self.chain.chain_hits + self.chain.chain_links;
        if total == 0 {
            0.0
        } else {
            self.chain.chain_hits as f64 / total as f64
        }
    }
}

/// Why a translation could not be produced right now. All variants are
/// recoverable through the interpreter fallback; genuinely undecodable
/// guest bytes resurface there as [`EmuError::Translate`].
enum TbFault {
    /// A [`FaultPlan`] injection at the frontend or backend boundary.
    Injected,
    /// The frontend failed to decode the guest block.
    Frontend,
    /// The backend failed to lower the block.
    Backend,
    /// The translation verifier rejected the produced translation (IR
    /// lint, fence-obligation check, or encoding read-back) and the
    /// block was discarded before it could be dispatched.
    Verify,
    /// The pc exhausted its re-translation retries and is permanently
    /// interpreted.
    Quarantined,
}

/// How much of the static translation validator runs (docs/VERIFIER.md).
///
/// The validator is a pure observer: no level changes cycle counts,
/// output, or exit values of a run whose translations all verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyLevel {
    /// No verification: the pipeline is trusted.
    Off,
    /// Install-time read-back only: every installed code region is read
    /// back from the code cache and compared against the canonical
    /// encoding of the lowered instructions *before* the translation
    /// becomes dispatchable. Catches cache corruption, never executes
    /// damaged code.
    Install,
    /// Full static validation on top of [`VerifyLevel::Install`]: the
    /// IR lint, the fence-obligation translation validation against the
    /// unoptimized reference block, and the host decode-back encoding
    /// check run on every translated block and superblock.
    Full,
}

impl Default for VerifyLevel {
    /// [`VerifyLevel::Full`] under `debug_assertions`, otherwise
    /// [`VerifyLevel::Off`].
    fn default() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Full
        } else {
            VerifyLevel::Off
        }
    }
}

/// Bounded fallback bookkeeping: guest pc → failed translation attempts,
/// with least-recently-touched eviction at [`QUARANTINE_CAPACITY`] so a
/// guest sweeping an unbounded set of failing pcs cannot grow the map
/// without limit. Eviction may forget a pc's retry count; the evicted
/// block simply earns a fresh (still bounded) retry budget, which is
/// safe — quarantine only ever trades translation attempts for
/// interpreter time, never correctness.
#[derive(Debug, Default)]
struct Quarantine {
    /// pc → (failed attempts, last-touch stamp).
    map: HashMap<u64, (u32, u64)>,
    /// Monotonic touch stamp; unique per touch, so LRU victims are
    /// deterministic even over `HashMap` iteration.
    stamp: u64,
}

impl Quarantine {
    /// Failed attempts recorded for `pc` (0 if untracked); refreshes
    /// the entry's LRU stamp.
    fn attempts(&mut self, pc: u64) -> u32 {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.map.get_mut(&pc) {
            Some(e) => {
                e.1 = stamp;
                e.0
            }
            None => 0,
        }
    }

    /// Whether `pc` is currently quarantined (no LRU refresh).
    fn contains(&self, pc: u64) -> bool {
        self.map.contains_key(&pc)
    }

    /// Records one more failed attempt for `pc`, evicting the
    /// least-recently-touched entry if the map is full.
    fn note_failure(&mut self, pc: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self.map.get_mut(&pc) {
            e.0 += 1;
            e.1 = stamp;
            return;
        }
        if self.map.len() >= QUARANTINE_CAPACITY {
            // Tie-break equal stamps on the guest pc: iteration order of
            // the map is hash-seeded, and fault-sweep runs must be
            // reproducible.
            if let Some(victim) =
                self.map.iter().min_by_key(|(&pc, &(_, s))| (s, pc)).map(|(&pc, _)| pc)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(pc, (1, stamp));
    }

    /// Clears `pc` (a successful translation ends its quarantine).
    fn clear(&mut self, pc: u64) {
        self.map.remove(&pc);
    }

    /// Number of tracked pcs (always ≤ [`QUARANTINE_CAPACITY`]).
    fn len(&self) -> usize {
        self.map.len()
    }
}

/// What the core should do after a serviced syscall.
enum SyscallOutcome {
    /// Continue at the pc following the syscall.
    Resume,
    /// The core halted (guest exit).
    Halted,
    /// Re-execute the syscall later (join busy-wait).
    Retry,
}

/// The DBT engine.
#[derive(Debug)]
pub struct Emulator {
    setup: Setup,
    machine: Machine,
    text: Vec<u8>,
    entry: u64,
    /// PLT vaddr → (native function id, arity) for host-linked imports.
    plt_natives: HashMap<u64, (u16, usize)>,
    exit_vals: Vec<Option<u64>>,
    output: Vec<u8>,
    tb_count: usize,
    core_started: Vec<bool>,
    passes: PassConfig,
    rmw_style: RmwStyle,
    /// Host backend lowering/verifying every translation
    /// (docs/BACKENDS.md); [`Setup::Native`] is pinned to Arm.
    backend_kind: BackendKind,
    plan: FaultPlan,
    /// Bounded guest pc → failed-translation-attempt map (fallback
    /// bookkeeping, satellite of the translation verifier).
    quarantine: Quarantine,
    /// Guest pcs that have ever had a successful translation installed.
    ever_translated: HashSet<u64>,
    fallback_blocks: usize,
    retranslations: usize,
    /// Instructions executed by the fallback interpreter (counts against
    /// the run's fuel).
    interp_steps: u64,
    fuel_limit: u64,
    watchdog: Option<u64>,
    /// Syscall service attempts (drives [`FaultPlan::fail_syscall_at`]).
    syscall_attempts: u64,
    /// Completed (non-busy-wait) syscalls — a watchdog progress marker.
    syscalls_completed: u64,
    /// Observability: metrics registry, trace sink, hot-TB profiler.
    obs: Obs,
    /// Optimizer statistics aggregated over every translated block.
    opt_totals: OptStats,
    /// Tier-2 promotion policy (`None` = tier-1 only).
    tiering: Option<TierConfig>,
    /// Guest pcs whose current translation is a tier-0 template block
    /// (promotion candidates for the tier-1 re-translate).
    tier0_pcs: HashSet<u64>,
    /// Tier-0 template-translation counters.
    template_stats: TemplateStats,
    /// Engine-side superblock counters (`subsumed`/`entries` live on the
    /// machine and are merged in at snapshot time).
    sb_stats: SbStats,
    /// Region-pass optimizer statistics over every installed superblock,
    /// kept out of [`Emulator::opt_totals`] so tier-1 reporting is
    /// unchanged by tiering.
    sb_opt: OptStats,
    /// Backend register-allocation statistics summed over every lowered
    /// block (tier-1 and tier-2), mirrored into `regalloc.*` metrics.
    regalloc_totals: AllocStats,
    /// Frontend-emitted fences counted pre-optimization, indexed per
    /// [`FenceKind::tcg_index`].
    fence_inserted: [u64; 12],
    /// Guest pc → stable engine TB id (1-based first-install order).
    tb_ids: HashMap<u64, u64>,
    /// Engine-side dispatch-loop profile: guest pc → (entries, misses);
    /// only filled while profiling is enabled.
    resume_profile: HashMap<u64, (u64, u64)>,
    /// Engine-side TB-map lookups that found an existing translation.
    tbcache_hits: u64,
    /// Injected faults encountered (translate / lower / syscall).
    faults_injected: u64,
    /// Guest instructions covered by tier-1 translations (denominator
    /// of the per-tier translation-cost comparison).
    tier1_insns: u64,
    /// Active translation-verifier level (docs/VERIFIER.md).
    verify: VerifyLevel,
    /// Verification checks executed (each level-applicable check on a
    /// TB or superblock counts once; a Full-level TB counts twice —
    /// translate-time static passes plus install-time read-back).
    verify_checked: u64,
    /// IR-lint violations (pass 1).
    verify_ir: u64,
    /// Fence-obligation violations (pass 2).
    verify_fence: u64,
    /// Encoding / read-back violations (pass 3 and install checks).
    verify_encoding: u64,
    /// Code installs so far (ordinal for
    /// [`FaultPlan::corrupt_install_at`]).
    installs_done: u64,
    /// The loaded image, kept so analysis can run on demand.
    binary: GuestBinary,
    /// Whole-program analysis facts driving fence relaxation
    /// (docs/ANALYSIS.md); `None` = analysis disabled (the default).
    analysis: Option<Arc<ImageFacts>>,
    /// Test hook: guest pcs the relaxer pretends are private (mutant
    /// injection for verifier kill tests; see `force_private_for_test`).
    forced_private: HashSet<u64>,
    /// Analysis-cache lookups that found existing facts.
    analysis_cache_hits: u64,
    /// Analysis-cache lookups that ran the full analysis.
    analysis_cache_misses: u64,
    /// Fences removed by analysis-driven relaxation at translate time.
    analysis_relaxed: u64,
    /// Tier-1 translations with at least one relaxed event.
    analysis_relaxed_blocks: u64,
    /// Known-bits hint statistics summed over tier-1 translations.
    hint_totals: HintStats,
}

impl Emulator {
    /// Loads a guest binary under the given setup.
    pub fn new(binary: &GuestBinary, setup: Setup, n_cores: usize, cost: CostModel) -> Emulator {
        let mut machine = Machine::new(n_cores, cost);
        machine.mem.write_bytes(TEXT_BASE, &binary.text);
        machine.mem.write_bytes(DATA_BASE, &binary.data);
        Emulator {
            setup,
            machine,
            text: binary.text.clone(),
            entry: binary.entry,
            plt_natives: HashMap::new(),
            exit_vals: vec![None; n_cores],
            output: Vec::new(),
            tb_count: 0,
            core_started: vec![false; n_cores],
            passes: PassConfig::all(),
            rmw_style: RmwStyle::Casal,
            backend_kind: BackendKind::Arm,
            plan: FaultPlan::default(),
            quarantine: Quarantine::default(),
            ever_translated: HashSet::new(),
            fallback_blocks: 0,
            retranslations: 0,
            interp_steps: 0,
            fuel_limit: u64::MAX,
            watchdog: None,
            syscall_attempts: 0,
            syscalls_completed: 0,
            obs: Obs::new(),
            opt_totals: OptStats::default(),
            tiering: None,
            tier0_pcs: HashSet::new(),
            template_stats: TemplateStats::default(),
            sb_stats: SbStats::default(),
            sb_opt: OptStats::default(),
            regalloc_totals: AllocStats::default(),
            fence_inserted: [0; 12],
            tb_ids: HashMap::new(),
            resume_profile: HashMap::new(),
            tbcache_hits: 0,
            faults_injected: 0,
            tier1_insns: 0,
            verify: VerifyLevel::default(),
            verify_checked: 0,
            verify_ir: 0,
            verify_fence: 0,
            verify_encoding: 0,
            installs_done: 0,
            binary: binary.clone(),
            analysis: None,
            forced_private: HashSet::new(),
            analysis_cache_hits: 0,
            analysis_cache_misses: 0,
            analysis_relaxed: 0,
            analysis_relaxed_blocks: 0,
            hint_totals: HintStats::default(),
        }
    }

    /// Overrides how direct TCG `Cas`/`AtomicAdd` ops are lowered (§6.3
    /// ablation): `casal` vs the `DMBFF; RMW2; DMBFF` exclusive loop. Only
    /// affects setups whose frontend emits direct RMW ops (risotto,
    /// no-fences).
    pub fn set_rmw_style(&mut self, style: RmwStyle) {
        self.rmw_style = style;
    }

    /// Selects the host backend (docs/BACKENDS.md). Call it before the
    /// first translation: installed code is not retranslated. The
    /// native-oracle setup models Arm-compiled binaries and stays on
    /// the Arm backend.
    ///
    /// # Panics
    ///
    /// If a non-Arm backend is requested under [`Setup::Native`].
    pub fn set_backend(&mut self, kind: BackendKind) {
        assert!(
            self.setup != Setup::Native || kind == BackendKind::Arm,
            "the native oracle is Arm-compiled code; it has no {} rendition",
            kind.name()
        );
        self.backend_kind = kind;
    }

    /// The active host backend.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// Overrides the optimizer pass configuration (ablation studies).
    pub fn set_passes(&mut self, passes: PassConfig) {
        self.passes = passes;
    }

    /// Installs a fault-injection plan (see [`FaultPlan`]). Set it before
    /// [`Emulator::link_library`] for host-call faults to apply.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Selects the translation-verifier level (see [`VerifyLevel`];
    /// defaults to [`VerifyLevel::Full`] in debug builds,
    /// [`VerifyLevel::Off`] in release builds). Verification is purely
    /// observational on clean translations: cycles, output and exit
    /// values are bit-identical across levels.
    pub fn set_verify(&mut self, level: VerifyLevel) {
        self.verify = level;
    }

    /// The active translation-verifier level.
    pub fn verify_level(&self) -> VerifyLevel {
        self.verify
    }

    /// Enables or disables whole-program analysis-driven fence
    /// relaxation (docs/ANALYSIS.md). Facts are computed once per
    /// distinct image and cached process-wide keyed by [`content_hash`];
    /// already-installed translations are not retroactively changed, so
    /// flip this before running. Relaxation never weakens verification:
    /// the Full-level verifier re-derives its own mask from the pristine
    /// facts and rejects any translation that relaxed more.
    pub fn set_analysis(&mut self, on: bool) {
        if !on {
            self.analysis = None;
            return;
        }
        if self.analysis.is_some() {
            return;
        }
        let (facts, hit) = cached_analysis(&self.binary);
        if hit {
            self.analysis_cache_hits += 1;
        } else {
            self.analysis_cache_misses += 1;
        }
        self.analysis = Some(facts);
    }

    /// Whether analysis-driven relaxation is enabled.
    pub fn analysis_enabled(&self) -> bool {
        self.analysis.is_some()
    }

    /// The analysis facts for the loaded image (None while disabled).
    pub fn analysis_facts(&self) -> Option<&ImageFacts> {
        self.analysis.as_deref()
    }

    /// Test hook (mutant injection): forces the relaxer to treat the
    /// access at `pc` as private regardless of what the analysis
    /// proved. The verifier mask is still derived from the pristine
    /// facts, so a wrong claim surfaces as a structured
    /// fence-obligation [`VerifyError`] at install time.
    #[doc(hidden)]
    pub fn force_private_for_test(&mut self, pc: u64) {
        self.forced_private.insert(pc);
    }

    /// Number of guest pcs currently quarantined (bounded by the
    /// engine's fixed quarantine capacity).
    pub fn quarantined_pcs(&self) -> usize {
        self.quarantine.len()
    }

    /// Selects the host scheduling policy (see [`SchedPolicy`]).
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.machine.set_sched_policy(policy);
    }

    /// Enables or disables TB chaining and the indirect jump cache on the
    /// host machine (on by default). The disabled configuration resolves
    /// every exit through the dispatcher and is the reference that chained
    /// runs are differentially checked against.
    pub fn set_chaining(&mut self, on: bool) {
        self.machine.set_chaining(on);
    }

    /// Installs a trace sink and enables structured event emission at the
    /// decode / opt / encode / install / dispatch / fault boundaries.
    /// Tracing is purely observational: a traced run is bit-identical
    /// (cycles, output, exit values) to an untraced one.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.obs.sink = sink;
        self.obs.tracing = true;
    }

    /// Removes the installed trace sink (replacing it with a
    /// [`NullSink`] and disabling event emission) and returns it — the
    /// way to inspect a [`crate::obs::RingBufferSink`] after a run.
    pub fn take_trace_sink(&mut self) -> Box<dyn TraceSink> {
        self.obs.tracing = false;
        std::mem::replace(&mut self.obs.sink, Box::new(NullSink))
    }

    /// Enables per-stage wall-clock histograms (`stage.*_ns` metrics).
    /// Off by default: the untimed pipeline takes no clock readings.
    pub fn set_stage_timing(&mut self, on: bool) {
        self.obs.timing = on;
    }

    /// Enables the hot-TB profiler on both the engine dispatch loop and
    /// the host machine's transfer paths (off by default; observational
    /// only). Disabling discards collected counts.
    pub fn set_profiling(&mut self, on: bool) {
        self.obs.profiling = on;
        // The tier-2 promoter owns the machine-side profile while
        // tiering is enabled; it must survive observability toggles.
        self.machine.set_profiling(on || self.tiering.is_some());
        if !on {
            self.resume_profile.clear();
            self.obs.profiler.clear();
        }
    }

    /// Enables (or, with `None`, disables) tier-2 superblock promotion.
    /// Tiering turns on the machine's transfer profile — the trace
    /// selector needs branch-bias counts — but not the engine's
    /// observational profiler ([`Emulator::set_profiling`]).
    ///
    /// Tiering never changes architectural results: superblocks are the
    /// same guest instructions under the same (sound) optimizer, with
    /// side-exit guards where the trace commits to a profiled direction.
    /// Cycle counts *do* change — that is the point.
    pub fn set_tiering(&mut self, cfg: Option<TierConfig>) {
        self.tiering = cfg;
        self.machine.set_hot_threshold(cfg.map(|c| c.machine_threshold()));
        self.machine.set_profiling(self.obs.profiling || cfg.is_some());
    }

    /// Tier-0 template statistics so far (also in [`Report::template`]
    /// after a run).
    pub fn template_stats(&self) -> TemplateStats {
        self.template_stats
    }

    /// `true` while the tier-0 template tier serves cold translations:
    /// tiering must be on with a [`TierConfig::warm_threshold`], and the
    /// setup must be a DBT one (the native oracle has no guest decode).
    fn tier0_active(&self) -> bool {
        self.setup != Setup::Native && self.tiering.is_some_and(|c| c.warm_threshold.is_some())
    }

    /// Tier-2 statistics so far (also in [`Report::sb`] after a run).
    pub fn sb_stats(&self) -> SbStats {
        let cache = self.machine.cache_stats();
        SbStats {
            subsumed: cache.sb_subsumed,
            entries: self.machine.chain_stats().sb_entries,
            fences_merged_cross: self.sb_opt.fences_merged_cross as u64,
            ..self.sb_stats
        }
    }

    /// `true` if `guest_pc` currently executes as a tier-2 superblock.
    pub fn is_superblock(&self, guest_pc: u64) -> bool {
        self.machine.is_sb_head(guest_pc)
    }

    /// Audits the machine's chain graph; empty means every patched chain
    /// word points at a live translation (see `Machine::validate_chains`).
    pub fn validate_chains(&self) -> Vec<(u64, u64, u64)> {
        self.machine.validate_chains()
    }

    /// A versioned snapshot of every registry metric, refreshed from the
    /// engine and machine state. Valid at any point — typically read
    /// after [`Emulator::run`] returns. See `docs/METRICS.md`.
    pub fn metrics(&mut self) -> MetricsSnapshot {
        self.refresh_metrics();
        self.obs.registry.snapshot()
    }

    /// The `n` hottest translation blocks by execution count (requires
    /// [`Emulator::set_profiling`]; empty otherwise).
    pub fn hot_tbs(&mut self, n: usize) -> Vec<HotTb> {
        self.rebuild_profiler();
        self.obs.profiler.top_n(n)
    }

    /// Arms the livelock watchdog: a run that makes no observable
    /// progress (new translation, completed syscall, output bytes, core
    /// exit) for `steps` machine steps fails with [`EmuError::Stalled`].
    pub fn set_watchdog(&mut self, steps: u64) {
        self.watchdog = Some(steps.max(1));
    }

    /// The active setup.
    pub fn setup(&self) -> Setup {
        self.setup
    }

    /// Read access to guest/machine memory (for assertions).
    pub fn mem(&self) -> &risotto_guest_x86::SparseMem {
        &self.machine.mem
    }

    /// The architectural value of guest register `reg` on `core`.
    ///
    /// Valid once the core has been initialized (and after
    /// [`run`](Emulator::run) returns): differential harnesses use this
    /// to compare final register files against the reference interpreter.
    /// Reads the env-slot block in the DBT setups and the pinned host
    /// registers in the native setup, so it is setup-agnostic.
    pub fn guest_reg(&self, core: usize, reg: Gpr) -> u64 {
        self.read_guest_reg(core, reg)
    }

    /// The full 16-register guest file of `core`
    /// (see [`Emulator::guest_reg`]).
    pub fn guest_regs(&self, core: usize) -> [u64; Gpr::COUNT] {
        let mut out = [0; Gpr::COUNT];
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.read_guest_reg(core, Gpr(i as u8));
        }
        out
    }

    /// The architectural condition flags of `core`
    /// (see [`Emulator::guest_reg`]).
    pub fn guest_flags(&self, core: usize) -> Flags {
        self.read_guest_flags(core)
    }

    /// Enables or disables the host machine's ordered atomic-access
    /// event log (off by default; purely observational). The fuzzer's
    /// per-access ordering oracle drains it with
    /// [`Emulator::take_atomic_log`] after a run.
    pub fn set_atomic_log(&mut self, on: bool) {
        self.machine.set_atomic_log(on);
    }

    /// Drains and returns the recorded [`AtomicEvent`]s in execution
    /// order (empty when the log is disabled).
    pub fn take_atomic_log(&mut self) -> Vec<AtomicEvent> {
        self.machine.take_atomic_log()
    }

    /// Links a host library against the binary's imports (§6.2): every
    /// export whose name appears in the binary's `.dynsym` gets its PLT
    /// entry redirected to the native function. The whole library is
    /// validated against `idl` first — unknown symbols, duplicate exports
    /// and arity mismatches are typed errors and link nothing. No-op
    /// (after validation) unless the setup enables host linking.
    ///
    /// Returns the names actually linked.
    ///
    /// # Errors
    ///
    /// [`LinkError`] on a library/IDL mismatch.
    pub fn link_library(
        &mut self,
        binary: &GuestBinary,
        idl: &Idl,
        lib: HostLibrary,
    ) -> Result<Vec<String>, LinkError> {
        let mut seen: HashSet<&str> = HashSet::new();
        for e in &lib.funcs {
            if !seen.insert(&e.name) {
                return Err(LinkError::DuplicateExport {
                    library: lib.name.clone(),
                    symbol: e.name.clone(),
                });
            }
            let Some(decl) = idl.lookup(&e.name) else {
                return Err(LinkError::NotInIdl {
                    library: lib.name.clone(),
                    symbol: e.name.clone(),
                });
            };
            if decl.params.len() != e.arity {
                return Err(LinkError::ArityMismatch {
                    library: lib.name.clone(),
                    symbol: e.name.clone(),
                    idl: decl.params.len(),
                    export: e.arity,
                });
            }
        }
        if !self.setup.host_linking() {
            return Ok(Vec::new());
        }
        let mut linked = Vec::new();
        for HostExport { name, arity, func } in lib.funcs {
            let Some(sym) = binary.dynsyms.iter().find(|d| d.name == name) else { continue };
            if self.plan.host_call_fails(&name) {
                // Injected link failure: leave the import on its
                // translated guest implementation (the PLT stub jumps
                // there) — the run still produces the same output.
                continue;
            }
            let id = self.machine.register_native(func);
            self.plt_natives.insert(sym.plt_vaddr, (id, arity));
            // Re-binding (last wins): discard any already-installed thunk.
            self.machine.unmap_tb(sym.plt_vaddr);
            linked.push(name);
        }
        Ok(linked)
    }

    fn env_base(core: usize) -> u64 {
        ENV_REGION + core as u64 * ENV_STRIDE
    }

    fn env_addr(core: usize, reg: u8) -> u64 {
        Self::env_base(core) + reg as u64 * 8
    }

    fn read_guest_reg(&self, core: usize, reg: Gpr) -> u64 {
        if self.setup == Setup::Native {
            self.machine.reg(core, Xreg(6 + reg.0))
        } else {
            self.machine.mem.read_u64(Self::env_addr(core, reg.0))
        }
    }

    fn write_guest_reg(&mut self, core: usize, reg: Gpr, val: u64) {
        if self.setup == Setup::Native {
            self.machine.set_reg(core, Xreg(6 + reg.0), val);
        } else {
            self.machine.mem.write_u64(Self::env_addr(core, reg.0), val);
        }
    }

    /// Guest condition flags: env slots 16–19 in the DBT setups, X22–X25
    /// in the native register convention.
    fn read_guest_flags(&self, core: usize) -> Flags {
        let get = |i: u8| {
            if self.setup == Setup::Native {
                self.machine.reg(core, Xreg(22 + (i - env::ZF)))
            } else {
                self.machine.mem.read_u64(Self::env_addr(core, i))
            }
        };
        Flags {
            zf: get(env::ZF) != 0,
            sf: get(env::SF) != 0,
            cf: get(env::CF) != 0,
            of: get(env::OF) != 0,
        }
    }

    fn write_guest_flags(&mut self, core: usize, f: Flags) {
        let vals = [(env::ZF, f.zf), (env::SF, f.sf), (env::CF, f.cf), (env::OF, f.of)];
        for (i, b) in vals {
            if self.setup == Setup::Native {
                self.machine.set_reg(core, Xreg(22 + (i - env::ZF)), b as u64);
            } else {
                self.machine.mem.write_u64(Self::env_addr(core, i), b as u64);
            }
        }
    }

    fn init_core(&mut self, core: usize, arg: Option<u64>) {
        let stack_top = STACK_TOP - core as u64 * STACK_SIZE;
        if self.setup == Setup::Native {
            for g in 0..16 {
                self.machine.set_reg(core, Xreg(6 + g), 0);
            }
        } else {
            for r in 0..env::COUNT as u8 {
                self.machine.mem.write_u64(Self::env_addr(core, r), 0);
            }
            self.machine.set_reg(core, ENV_BASE, Self::env_base(core));
        }
        self.machine.set_reg(core, SPILL_BASE, SPILL_REGION + core as u64 * SPILL_STRIDE);
        self.write_guest_reg(core, Gpr::RSP, stack_top);
        if let Some(a) = arg {
            self.write_guest_reg(core, Gpr::RDI, a);
        }
        self.core_started[core] = true;
    }

    /// A 16-byte instruction window at `pc` (zero-padded outside `.text`).
    fn fetch_window(&self, pc: u64) -> [u8; 16] {
        let mut w = [0u8; 16];
        for (i, slot) in w.iter_mut().enumerate() {
            let byte = pc
                .checked_sub(TEXT_BASE)
                .and_then(|off| off.checked_add(i as u64))
                .and_then(|off| usize::try_from(off).ok())
                .and_then(|off| self.text.get(off));
            if let Some(&b) = byte {
                *slot = b;
            }
        }
        w
    }

    /// Fires a planned install-time corruption ([`FaultPlan::corrupt_install_at`])
    /// against the freshly installed region at `host`, if one is due.
    fn maybe_corrupt_install(&mut self, host: u64) {
        let nth = self.installs_done;
        self.installs_done += 1;
        if !self.plan.take_install_corruption(nth) {
            return;
        }
        let len = self.machine.code_bytes(host).map_or(0, <[u8]>::len);
        if len > 0 {
            let off = self.plan.pick(len);
            if self.machine.corrupt_code_byte(host, off) {
                self.faults_injected += 1;
            }
        }
    }

    /// Install-time read-back check: the bytes resident in the code
    /// cache at `host` must be exactly the canonical encoding of the
    /// instructions that were installed.
    fn check_install_bytes(
        &self,
        guest_pc: u64,
        host: u64,
        code: &[HostInsn],
    ) -> Result<(), VerifyError> {
        let mut expect = Vec::new();
        for i in code {
            i.encode(&mut expect);
        }
        let got = self.machine.code_bytes(host).unwrap_or(&[]);
        if got != expect.as_slice() {
            let off = expect
                .iter()
                .zip(got)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| expect.len().min(got.len()));
            return Err(VerifyError {
                pass: VerifyPass::Encoding,
                guest_pc,
                op_index: None,
                obligation: format!(
                    "installed bytes differ from canonical encoding at code offset {off}"
                ),
            });
        }
        Ok(())
    }

    /// Counts a verifier violation into the per-pass counters and emits
    /// a fault trace event.
    fn record_verify_violation(&mut self, core: Option<usize>, e: &VerifyError) {
        match e.pass {
            VerifyPass::IrLint => self.verify_ir += 1,
            VerifyPass::FenceObligations => self.verify_fence += 1,
            VerifyPass::Encoding => self.verify_encoding += 1,
        }
        if self.obs.tracing {
            let tb_id = self.tb_ids.get(&e.guest_pc).copied();
            self.obs.emit(TraceStage::Fault, core, Some(e.guest_pc), tb_id, None, e.to_string());
        }
    }

    /// The translate-time static validation of [`VerifyLevel::Full`]:
    /// IR lint, fence-obligation check of `optimized` against the
    /// unoptimized `reference`, and the host decode-back encoding check
    /// of `code`'s canonical bytes. On violation the counters/trace are
    /// updated and the block is rejected into the quarantine path.
    fn verify_translation(
        &mut self,
        core: Option<usize>,
        reference: &TcgBlock,
        optimized: &TcgBlock,
        code: &[HostInsn],
        in_superblock: bool,
        relax_mask: &[bool],
    ) -> Result<(), TbFault> {
        self.verify_checked += 1;
        let mut backend = self.setup.backend();
        if self.setup != Setup::Native {
            backend.rmw = self.rmw_style;
        }
        let result = tcg_verify::lint(optimized, in_superblock)
            .and_then(|()| {
                tcg_verify::check_obligations_masked(
                    reference,
                    optimized,
                    self.setup.frontend().fences,
                    self.setup.opt_policy(),
                    relax_mask,
                )
            })
            .and_then(|()| {
                let mut bytes = Vec::new();
                for i in code {
                    i.encode(&mut bytes);
                }
                self.backend_kind.host().check_encoding(optimized, code, &bytes, backend)
            });
        result.map_err(|e| {
            self.record_verify_violation(core, &e);
            TbFault::Verify
        })
    }

    /// Full-level superblock structural check: the relink list the
    /// machine will evict on install must be exactly the head plus the
    /// stitched `TbBoundary` seams, so no unrelated tier-1 translation
    /// is unmapped.
    fn check_superblock_relinks(sb: &TcgBlock, pcs: &[u64]) -> Result<(), VerifyError> {
        let err = |obligation: String| VerifyError {
            pass: VerifyPass::Encoding,
            guest_pc: sb.guest_pc,
            op_index: None,
            obligation,
        };
        if pcs.first() != Some(&sb.guest_pc) {
            return Err(err(format!(
                "superblock head {:#x} is not the first relink target",
                sb.guest_pc
            )));
        }
        let seams: HashSet<u64> = sb
            .ops
            .iter()
            .filter_map(|op| match op {
                TcgOp::TbBoundary { pc } => Some(*pc),
                _ => None,
            })
            .collect();
        for &pc in &pcs[1..] {
            if !seams.contains(&pc) {
                return Err(err(format!(
                    "relink target {pc:#x} has no TbBoundary seam in the stitched region"
                )));
            }
        }
        Ok(())
    }

    /// Installs host code for `guest_pc` and updates the cache counters.
    /// At any level above [`VerifyLevel::Off`] the installed bytes are
    /// read back and checked *before* the translation is mapped; a
    /// mismatch discards the region and quarantines the pc, so corrupt
    /// code is never dispatchable.
    fn install(
        &mut self,
        core: Option<usize>,
        guest_pc: u64,
        code: &[HostInsn],
    ) -> Result<u64, TbFault> {
        let t0 = self.obs.timing.then(Instant::now);
        let host = self.machine.install_code(code);
        self.maybe_corrupt_install(host);
        if self.verify != VerifyLevel::Off {
            self.verify_checked += 1;
            if let Err(e) = self.check_install_bytes(guest_pc, host, code) {
                self.record_verify_violation(core, &e);
                self.machine.discard_region(host);
                return Err(TbFault::Verify);
            }
        }
        self.machine.map_tb(guest_pc, host);
        self.tb_count += 1;
        let tb_id = *self.tb_ids.entry(guest_pc).or_insert(self.tb_count as u64);
        if !self.ever_translated.insert(guest_pc) {
            self.retranslations += 1;
        }
        let dur = t0.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = dur {
            self.obs.registry.observe("stage.install_ns", ns);
        }
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Install,
                core,
                Some(guest_pc),
                Some(tb_id),
                dur,
                format!("{} host insns", code.len()),
            );
        }
        Ok(host)
    }

    /// Frontend-only translation for tier-2 trace formation.
    ///
    /// Never consults the [`FaultPlan`]: promotion is opportunistic and
    /// must not advance the plan's deterministic fault sequence — a
    /// tiered run sees exactly the injected faults a tier-1 run does.
    fn translate_ir(&self, guest_pc: u64) -> Result<TcgBlock, TranslateError> {
        let text = &self.text;
        let fetch = |addr: u64| -> [u8; 16] {
            let mut w = [0u8; 16];
            for (i, slot) in w.iter_mut().enumerate() {
                let byte = addr
                    .checked_sub(TEXT_BASE)
                    .and_then(|off| off.checked_add(i as u64))
                    .and_then(|off| usize::try_from(off).ok())
                    .and_then(|off| text.get(off));
                if let Some(&b) = byte {
                    *slot = b;
                }
            }
            w
        };
        translate_block(guest_pc, self.setup.frontend(), fetch)
    }

    /// Total observed entries into `guest_pc` — machine fast-path
    /// transfers plus engine dispatch-loop entries.
    fn entry_count(&self, guest_pc: u64) -> u64 {
        let machine =
            self.machine.tb_profile().and_then(|p| p.get(&guest_pc)).map_or(0, |e| e.execs);
        let resume = self.resume_profile.get(&guest_pc).map_or(0, |e| e.0);
        machine + resume
    }

    /// The profiled direction of a conditional exit, if decisive: the
    /// hotter successor must have real weight (≥ 8 entries) and dominate
    /// the colder one 4:1, else the trace ends rather than gamble on a
    /// side exit that would fire often.
    fn biased_successor(&self, taken: u64, fallthrough: u64) -> Option<u64> {
        let t = self.entry_count(taken);
        let f = self.entry_count(fallthrough);
        let (hot_pc, hi, lo) = if t >= f { (taken, t, f) } else { (fallthrough, f, t) };
        (hi >= 8 && hi >= 4 * lo).then_some(hot_pc)
    }

    /// Walks the dominant chain from `head`: direct jumps are followed
    /// unconditionally, conditional exits only when decisively biased,
    /// and the trace stops at indirect/terminal exits, revisits (loop
    /// back-edges), PLT thunks, quarantined pcs, and `max_tbs`. The
    /// returned flag marks a *cyclic* trace — one whose last block's
    /// on-trace successor is the head itself, i.e. a whole hot loop.
    fn select_trace(&self, head: u64, cfg: TierConfig) -> (Vec<TcgBlock>, bool) {
        let mut parts: Vec<TcgBlock> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut pc = head;
        loop {
            if !parts.is_empty() && pc == head {
                return (parts, true);
            }
            if parts.len() >= cfg.max_tbs
                || !visited.insert(pc)
                || self.plt_natives.contains_key(&pc)
                || self.quarantine.contains(pc)
            {
                break;
            }
            let Ok(block) = self.translate_ir(pc) else { break };
            let exit = block.exit.clone();
            parts.push(block);
            pc = match exit {
                TbExit::Jump(t) => t,
                TbExit::CondJump { taken, fallthrough, .. } => {
                    match self.biased_successor(taken, fallthrough) {
                        Some(t) => t,
                        None => break,
                    }
                }
                TbExit::JumpReg(_) | TbExit::Halt | TbExit::Syscall { .. } => break,
            };
        }
        (parts, false)
    }

    /// Routes [`Event::HotTb`] per the tier ladder: a tier-0 template
    /// block crossing [`TierConfig::warm_threshold`] re-translates
    /// through the tier-1 IR pipeline; a tier-1 block crossing
    /// [`TierConfig::hot_threshold`] becomes a tier-2 superblock
    /// candidate. The machine profile fires at every multiple of the
    /// smaller threshold, so the larger one is re-checked on later
    /// crossings rather than missed.
    fn on_hot_tb(&mut self, core: usize, guest_pc: u64) {
        let Some(cfg) = self.tiering else { return };
        let Some(warm) = cfg.warm_threshold else {
            self.try_promote(core, guest_pc);
            return;
        };
        if self.tier0_pcs.contains(&guest_pc) {
            if self.entry_count(guest_pc) >= warm {
                self.promote_template(core, guest_pc);
            }
        } else if self.entry_count(guest_pc) >= cfg.hot_threshold {
            self.try_promote(core, guest_pc);
        }
    }

    /// Promotes a warm tier-0 pc: the block re-translates through the
    /// full tier-1 pipeline (optimizer, register allocator, Full-level
    /// verifier passes when enabled) and the result is installed over
    /// the template body — the rebind unlinks chain words into the old
    /// code. Failure (injected or real) keeps the template translation:
    /// correctness never depends on promotion.
    fn promote_template(&mut self, core: usize, guest_pc: u64) {
        if self.machine.lookup_tb(guest_pc).is_none()
            || self.machine.is_sb_head(guest_pc)
            || self.plt_natives.contains_key(&guest_pc)
            || self.quarantine.contains(guest_pc)
        {
            // Stale candidate: evicted, subsumed by a superblock, or
            // quarantined since it was marked.
            self.tier0_pcs.remove(&guest_pc);
            return;
        }
        let produced = self
            .try_translate(Some(core), guest_pc)
            .and_then(|code| self.install(Some(core), guest_pc, &code));
        match produced {
            Ok(_) => {
                self.tier0_pcs.remove(&guest_pc);
                self.template_stats.promotions += 1;
            }
            Err(_) => self.template_stats.promotion_failures += 1,
        }
    }

    /// Services a tier-2 candidate: select → stitch → region-optimize →
    /// lower → install. Failures at any stage leave the tier-1 world
    /// untouched (counted, never fatal); the triggering core needs no
    /// resume — its transfer completed before the event fired.
    fn try_promote(&mut self, core: usize, guest_pc: u64) {
        let Some(cfg) = self.tiering else { return };
        if self.machine.lookup_tb(guest_pc).is_none()
            || self.machine.is_sb_head(guest_pc)
            || self.plt_natives.contains_key(&guest_pc)
            || self.quarantine.contains(guest_pc)
        {
            self.sb_stats.declined += 1;
            return;
        }
        let t0 = self.obs.timing.then(Instant::now);
        let (mut parts, cyclic) = self.select_trace(guest_pc, cfg);
        if cyclic {
            // The trace is a whole loop: any rotation executes the same
            // code, so re-head it where the region optimizer can merge
            // the most cross-seam fences. The triggering block stays in
            // the (subsumed) trace; a tier-1 refill covers the one
            // transfer already in flight.
            let r = superblock::best_rotation(&parts);
            if r != 0 && !self.machine.is_sb_head(parts[r].guest_pc) {
                parts.rotate_left(r);
            }
        }
        if let Some(ns) = t0.map(|t| t.elapsed().as_nanos() as u64) {
            self.obs.registry.observe("sb.stage.select_ns", ns);
        }
        if parts.len() < cfg.min_tbs.max(2) {
            self.sb_stats.declined += 1;
            return;
        }
        let pcs: Vec<u64> = parts.iter().map(|b| b.guest_pc).collect();
        let mut sb = match superblock::stitch(parts) {
            Ok(sb) => sb,
            Err(_) => {
                self.sb_stats.failures += 1;
                return;
            }
        };
        // The unoptimized stitched region is the fence-obligation
        // reference the Full-level verifier validates against.
        let reference = (self.verify == VerifyLevel::Full).then(|| sb.clone());
        let t1 = self.obs.timing.then(Instant::now);
        let stats = superblock::optimize_region(&mut sb, self.setup.opt_policy(), self.passes);
        self.sb_opt += stats;
        if let Some(ns) = t1.map(|t| t.elapsed().as_nanos() as u64) {
            self.obs.registry.observe("sb.stage.opt_ns", ns);
        }
        let mut backend = self.setup.backend();
        if self.setup != Setup::Native {
            backend.rmw = self.rmw_style;
        }
        let t2 = self.obs.timing.then(Instant::now);
        let code = match self.backend_kind.host().lower_block_with_stats(&sb, backend) {
            Ok(out) => {
                self.regalloc_totals += out.alloc;
                out.insns
            }
            Err(_) => {
                self.sb_stats.failures += 1;
                return;
            }
        };
        let encode_ns = t2.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = encode_ns {
            self.obs.registry.observe("sb.stage.encode_ns", ns);
        }
        if self.verify == VerifyLevel::Full {
            if let Err(e) = Self::check_superblock_relinks(&sb, &pcs) {
                self.record_verify_violation(Some(core), &e);
                self.sb_stats.failures += 1;
                return;
            }
        }
        if let Some(reference) = reference.as_ref() {
            if self.verify_translation(Some(core), reference, &sb, &code, true, &[]).is_err() {
                self.sb_stats.failures += 1;
                return;
            }
        }
        let shape = superblock::shape_of(&sb);
        let head_pc = sb.guest_pc;
        let host = self.machine.install_superblock(head_pc, &code, &pcs);
        self.maybe_corrupt_install(host);
        if self.verify != VerifyLevel::Off {
            self.verify_checked += 1;
            if let Err(e) = self.check_install_bytes(head_pc, host, &code) {
                self.record_verify_violation(Some(core), &e);
                // Evict the damaged superblock; the head and subsumed
                // pcs refill as fresh tier-1 translations on miss.
                self.machine.unmap_tb(head_pc);
                self.sb_stats.failures += 1;
                return;
            }
        }
        self.sb_stats.promotions += 1;
        self.sb_stats.tbs_merged += shape.tbs as u64;
        self.sb_stats.side_exits += shape.side_exits as u64;
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Install,
                Some(core),
                Some(head_pc),
                self.tb_ids.get(&head_pc).copied(),
                encode_ns,
                format!(
                    "superblock: {} tbs, {} side exits, {} cross-boundary fence merges",
                    shape.tbs, shape.side_exits, stats.fences_merged_cross
                ),
            );
        }
    }

    /// Runs the full translation pipeline for one block, with fault
    /// injection at the frontend and backend boundaries.
    fn try_translate(
        &mut self,
        core: Option<usize>,
        guest_pc: u64,
    ) -> Result<Vec<HostInsn>, TbFault> {
        if self.plan.translate_fails(guest_pc) {
            self.faults_injected += 1;
            return Err(TbFault::Injected);
        }
        let text = &self.text;
        let fetch = |addr: u64| -> [u8; 16] {
            let mut w = [0u8; 16];
            for (i, slot) in w.iter_mut().enumerate() {
                let byte = addr
                    .checked_sub(TEXT_BASE)
                    .and_then(|off| off.checked_add(i as u64))
                    .and_then(|off| usize::try_from(off).ok())
                    .and_then(|off| text.get(off));
                if let Some(&b) = byte {
                    *slot = b;
                }
            }
            w
        };
        let t0 = self.obs.timing.then(Instant::now);
        let mut block = translate_block(guest_pc, self.setup.frontend(), fetch)
            .map_err(|_| TbFault::Frontend)?;
        for op in &block.ops {
            if let TcgOp::Fence(k) = op {
                if let Some(i) = k.tcg_index() {
                    self.fence_inserted[i] += 1;
                }
            }
        }
        let decode_ns = t0.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = decode_ns {
            self.obs.registry.observe("stage.decode_ns", ns);
        }
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Decode,
                core,
                Some(guest_pc),
                None,
                decode_ns,
                format!("{} ops", block.ops.len()),
            );
        }
        // Guest-instruction count for the per-tier translation-cost
        // metrics (`translate.insns`), re-decoded outside the timed
        // stages; decoding already succeeded above.
        let mut p = guest_pc;
        let end = guest_pc + block.guest_len as u64;
        while p < end {
            match Insn::decode(&fetch(p)) {
                Ok((_, len)) => {
                    self.tier1_insns += 1;
                    p += len as u64;
                }
                Err(_) => break,
            }
        }
        // Analysis-driven relaxation (docs/ANALYSIS.md): the engine
        // mask relaxes the frontend block before optimization; the
        // verifier mask is re-derived from the pristine facts, so a
        // wrong "private" claim (e.g. an injected mutant) is rejected
        // by Pass 2 at install time.
        let masks = self.analysis.as_ref().map(|facts| {
            let sites = event_sites(guest_pc, block.guest_len as u64, fetch);
            let verifier: Vec<bool> =
                sites.iter().map(|&(p, plain)| plain && facts.relaxable(p)).collect();
            let engine: Vec<bool> = if self.forced_private.is_empty() {
                verifier.clone()
            } else {
                sites
                    .iter()
                    .zip(&verifier)
                    .map(|(&(p, plain), &v)| v || (plain && self.forced_private.contains(&p)))
                    .collect()
            };
            (engine, verifier)
        });
        // The unoptimized block is the fence-obligation reference the
        // Full-level verifier validates the optimized result against.
        let reference = (self.verify == VerifyLevel::Full).then(|| block.clone());
        if let Some((engine_mask, _)) = &masks {
            let removed =
                tcg_verify::relax_block(&mut block, self.setup.frontend().fences, engine_mask);
            if removed > 0 {
                self.analysis_relaxed += removed as u64;
                self.analysis_relaxed_blocks += 1;
            }
        }
        // Known-bits hints (docs/ANALYSIS.md): IR-level value-range
        // facts fold pure ops and prune statically-decided branches
        // before the regular pass pipeline. Events and fences are never
        // touched, so the verifier reference stays valid.
        if self.analysis.is_some() {
            let hints = ir_hints(&block);
            let hs = apply_hints(&mut block, &hints);
            self.hint_totals.folded += hs.folded;
            self.hint_totals.branches_pruned += hs.branches_pruned;
        }
        let t1 = self.obs.timing.then(Instant::now);
        let stats = optimize_with(&mut block, self.setup.opt_policy(), self.passes);
        self.opt_totals += stats;
        let opt_ns = t1.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = opt_ns {
            self.obs.registry.observe("stage.opt_ns", ns);
        }
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Opt,
                core,
                Some(guest_pc),
                None,
                opt_ns,
                format!(
                    "folded {}, forwarded {}, fences merged {}, dce {}",
                    stats.folded, stats.loads_forwarded, stats.fences_merged, stats.dce_removed
                ),
            );
        }
        if self.plan.lower_fails(guest_pc) {
            self.faults_injected += 1;
            return Err(TbFault::Injected);
        }
        let mut backend = self.setup.backend();
        if self.setup != Setup::Native {
            backend.rmw = self.rmw_style;
        }
        let t2 = self.obs.timing.then(Instant::now);
        let code = self
            .backend_kind
            .host()
            .lower_block_with_stats(&block, backend)
            .map(|out| {
                self.regalloc_totals += out.alloc;
                out.insns
            })
            .map_err(|_| TbFault::Backend)?;
        let encode_ns = t2.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = encode_ns {
            self.obs.registry.observe("stage.encode_ns", ns);
        }
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Encode,
                core,
                Some(guest_pc),
                None,
                encode_ns,
                format!("{} host insns", code.len()),
            );
        }
        if let Some(reference) = reference.as_ref() {
            let mask = masks.as_ref().map(|(_, v)| v.as_slice()).unwrap_or(&[]);
            self.verify_translation(core, reference, &block, &code, false, mask)?;
        }
        Ok(code)
    }

    /// Tier-0: translates one block by IR-less template instantiation —
    /// no `TcgOp` block is built and no optimizer, register allocator or
    /// per-block static verifier pass runs. The template set is verified
    /// once, statically, by the test suite (Theorem-1 per template per
    /// backend); only the install-time encoding read-back remains on
    /// this path. Fault-injection sites mirror tier-1: `translate_fails`
    /// before decode, `lower_fails` after.
    fn try_template(
        &mut self,
        core: Option<usize>,
        guest_pc: u64,
    ) -> Result<Vec<HostInsn>, TbFault> {
        if self.plan.translate_fails(guest_pc) {
            self.faults_injected += 1;
            return Err(TbFault::Injected);
        }
        let mut backend = self.setup.backend();
        backend.rmw = self.rmw_style;
        let text = &self.text;
        let fetch = |addr: u64| -> [u8; 16] {
            let mut w = [0u8; 16];
            for (i, slot) in w.iter_mut().enumerate() {
                let byte = addr
                    .checked_sub(TEXT_BASE)
                    .and_then(|off| off.checked_add(i as u64))
                    .and_then(|off| usize::try_from(off).ok())
                    .and_then(|off| text.get(off));
                if let Some(&b) = byte {
                    *slot = b;
                }
            }
            w
        };
        let t0 = self.obs.timing.then(Instant::now);
        let blk = translate_block_template(
            guest_pc,
            self.setup.frontend(),
            backend,
            self.backend_kind.ordering(),
            fetch,
        )
        .map_err(|e| match e {
            TemplateError::Decode(_) => TbFault::Frontend,
            TemplateError::Lower(_) => TbFault::Backend,
        })?;
        let template_ns = t0.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = template_ns {
            self.obs.registry.observe("stage.template_ns", ns);
        }
        if self.plan.lower_fails(guest_pc) {
            self.faults_injected += 1;
            return Err(TbFault::Injected);
        }
        self.template_stats.blocks += 1;
        self.template_stats.insns += blk.insns as u64;
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Decode,
                core,
                Some(guest_pc),
                None,
                template_ns,
                format!("tier-0 template: {} guest insns", blk.insns),
            );
        }
        Ok(blk.code)
    }

    /// Ensures a translation exists for `guest_pc`; returns its host pc,
    /// or the (recoverable) reason none could be produced. Verifier
    /// rejections take the same quarantine path as pipeline failures:
    /// bounded re-translation, interpreter fallback in between.
    fn ensure_translated(&mut self, core: Option<usize>, guest_pc: u64) -> Result<u64, TbFault> {
        if let Some(host) = self.machine.lookup_tb(guest_pc) {
            self.tbcache_hits += 1;
            return Ok(host);
        }
        let prior = self.quarantine.attempts(guest_pc);
        if prior > QUARANTINE_RETRY_LIMIT {
            return Err(TbFault::Quarantined);
        }
        if prior > 0 {
            // A bounded re-translate retry of a previously failing block.
            self.retranslations += 1;
        }
        let produced = if let Some(&(func, nargs)) = self.plt_natives.get(&guest_pc) {
            let code = self.build_native_thunk(func, nargs);
            self.install(core, guest_pc, &code)
        } else if self.tier0_active() {
            // Cold code gets the near-zero-latency template tier; the
            // profiler re-translates it through tier-1 when it warms up.
            let produced = self
                .try_template(core, guest_pc)
                .and_then(|code| self.install(core, guest_pc, &code));
            if produced.is_ok() {
                self.tier0_pcs.insert(guest_pc);
            }
            produced
        } else {
            self.try_translate(core, guest_pc).and_then(|code| self.install(core, guest_pc, &code))
        };
        match produced {
            Ok(host) => {
                self.quarantine.clear(guest_pc);
                Ok(host)
            }
            Err(fault) => {
                if prior == 0 {
                    self.fallback_blocks += 1;
                }
                self.quarantine.note_failure(guest_pc);
                if self.obs.tracing {
                    let what = match fault {
                        TbFault::Injected => "injected fault",
                        TbFault::Frontend => "frontend decode failure",
                        TbFault::Backend => "backend lowering failure",
                        TbFault::Verify => "translation verification failure",
                        TbFault::Quarantined => "quarantined",
                    };
                    self.obs.emit(
                        TraceStage::Fault,
                        core,
                        Some(guest_pc),
                        None,
                        None,
                        format!("{what}; interpreter fallback (attempt {})", prior + 1),
                    );
                }
                Err(fault)
            }
        }
    }

    /// Puts `core` back into execution at `guest_pc`: translated code
    /// when the pipeline can produce it, interpreted blocks otherwise,
    /// until a translatable pc is reached or the core halts.
    fn resume_at(&mut self, core: usize, guest_pc: u64) -> Result<(), EmuError> {
        if self.obs.tracing {
            self.obs.emit(
                TraceStage::Dispatch,
                Some(core),
                Some(guest_pc),
                self.tb_ids.get(&guest_pc).copied(),
                None,
                String::new(),
            );
        }
        let mut pc = guest_pc;
        loop {
            match self.ensure_translated(Some(core), pc) {
                Ok(host) => {
                    if self.obs.profiling {
                        // Every dispatch-loop entry missed the machine's
                        // fast paths by definition.
                        let e = self.resume_profile.entry(pc).or_insert((0, 0));
                        e.0 += 1;
                        e.1 += 1;
                    }
                    self.machine.start_core(core, host);
                    return Ok(());
                }
                Err(_fault) => match self.interpret_block(core, pc)? {
                    Some(next) => pc = next,
                    None => return Ok(()),
                },
            }
        }
    }

    /// Interprets one guest basic block on `core`'s behalf, against the
    /// shared machine memory and the core's guest register state. Returns
    /// the next guest pc, or `None` if the core halted.
    ///
    /// The core's store buffer is drained first — the same
    /// synchronization a helper or native call performs at its ABI
    /// boundary — and interpreted accesses are sequentially consistent,
    /// which is a legal (stricter) execution under both memory models.
    fn interpret_block(&mut self, core: usize, start_pc: u64) -> Result<Option<u64>, EmuError> {
        self.machine.drain_store_buffer(core);
        let mut pc = start_pc;
        for _ in 0..MAX_INTERP_BLOCK {
            if self.interp_steps >= self.fuel_limit {
                return Err(EmuError::OutOfFuel);
            }
            self.interp_steps += 1;
            let window = self.fetch_window(pc);
            let (insn, len) = Insn::decode(&window).map_err(|cause| EmuError::Translate {
                source: TranslateError { pc, cause },
                core: Some(core),
                tb_count: self.tb_count,
            })?;
            let next = pc.wrapping_add(len as u64);
            self.machine.add_cycles(core, INTERP_CYCLES_PER_INSN);

            let rd = |s: &Self, r: Gpr| s.read_guest_reg(core, r);
            let operand = |s: &Self, o: Operand| match o {
                Operand::Reg(r) => s.read_guest_reg(core, r),
                Operand::Imm(i) => i,
            };

            match insn {
                Insn::MovRI { dst, imm } => self.write_guest_reg(core, dst, imm),
                Insn::MovRR { dst, src } => {
                    let v = rd(self, src);
                    self.write_guest_reg(core, dst, v);
                }
                Insn::Load { dst, base, disp } => {
                    let addr = rd(self, base).wrapping_add(disp as i64 as u64);
                    let v = self.machine.mem.read_u64(addr);
                    self.write_guest_reg(core, dst, v);
                }
                Insn::Store { base, disp, src } => {
                    let addr = rd(self, base).wrapping_add(disp as i64 as u64);
                    let v = rd(self, src);
                    self.machine.mem.write_u64(addr, v);
                }
                Insn::LoadB { dst, base, disp } => {
                    let addr = rd(self, base).wrapping_add(disp as i64 as u64);
                    let v = self.machine.mem.read_u8(addr) as u64;
                    self.write_guest_reg(core, dst, v);
                }
                Insn::StoreB { base, disp, src } => {
                    let addr = rd(self, base).wrapping_add(disp as i64 as u64);
                    let v = rd(self, src) as u8;
                    self.machine.mem.write_u8(addr, v);
                }
                Insn::MulWide { src } => {
                    let a = rd(self, Gpr::RAX) as u128;
                    let b = rd(self, src) as u128;
                    let p = a * b;
                    self.write_guest_reg(core, Gpr::RAX, p as u64);
                    self.write_guest_reg(core, Gpr::RDX, (p >> 64) as u64);
                }
                Insn::Lea { dst, base, disp } => {
                    let v = rd(self, base).wrapping_add(disp as i64 as u64);
                    self.write_guest_reg(core, dst, v);
                }
                Insn::Alu { op, dst, src } => {
                    let a = rd(self, dst);
                    let b = operand(self, src);
                    let r = op.apply(a, b);
                    self.write_guest_reg(core, dst, r);
                    let flags = match op {
                        AluOp::Add => Flags::from_add(a, b),
                        AluOp::Sub => Flags::from_sub(a, b),
                        _ => Flags::from_logic(r),
                    };
                    self.write_guest_flags(core, flags);
                }
                Insn::Div { src } => {
                    let d = rd(self, src);
                    let a = rd(self, Gpr::RAX);
                    // Div-by-zero yields (0, a) uniformly across all
                    // layers of this project (Arm-style); see DESIGN.md.
                    let (q, r) = (a.checked_div(d).unwrap_or(0), a.checked_rem(d).unwrap_or(a));
                    self.write_guest_reg(core, Gpr::RAX, q);
                    self.write_guest_reg(core, Gpr::RDX, r);
                }
                Insn::Fp { op, dst, src } => {
                    let a = rd(self, dst);
                    let b = rd(self, src);
                    let v = op.apply(a, b);
                    self.write_guest_reg(core, dst, v);
                }
                Insn::Cmp { a, b } => {
                    let flags = Flags::from_sub(rd(self, a), operand(self, b));
                    self.write_guest_flags(core, flags);
                }
                Insn::Test { a, b } => {
                    let flags = Flags::from_logic(rd(self, a) & operand(self, b));
                    self.write_guest_flags(core, flags);
                }
                Insn::Jcc { cond, rel } => {
                    let taken = cond.eval(self.read_guest_flags(core));
                    let target = if taken { next.wrapping_add(rel as i64 as u64) } else { next };
                    return Ok(Some(target));
                }
                Insn::Jmp { rel } => return Ok(Some(next.wrapping_add(rel as i64 as u64))),
                Insn::JmpReg { reg } => return Ok(Some(rd(self, reg))),
                Insn::Call { rel } => {
                    let sp = rd(self, Gpr::RSP).wrapping_sub(8);
                    self.write_guest_reg(core, Gpr::RSP, sp);
                    self.machine.mem.write_u64(sp, next);
                    return Ok(Some(next.wrapping_add(rel as i64 as u64)));
                }
                Insn::CallReg { reg } => {
                    let target = rd(self, reg);
                    let sp = rd(self, Gpr::RSP).wrapping_sub(8);
                    self.write_guest_reg(core, Gpr::RSP, sp);
                    self.machine.mem.write_u64(sp, next);
                    return Ok(Some(target));
                }
                Insn::Ret => {
                    let sp = rd(self, Gpr::RSP);
                    let ra = self.machine.mem.read_u64(sp);
                    self.write_guest_reg(core, Gpr::RSP, sp.wrapping_add(8));
                    return Ok(Some(ra));
                }
                Insn::Push { src } => {
                    let v = rd(self, src);
                    let sp = rd(self, Gpr::RSP).wrapping_sub(8);
                    self.write_guest_reg(core, Gpr::RSP, sp);
                    self.machine.mem.write_u64(sp, v);
                }
                Insn::Pop { dst } => {
                    let sp = rd(self, Gpr::RSP);
                    let v = self.machine.mem.read_u64(sp);
                    self.write_guest_reg(core, dst, v);
                    self.write_guest_reg(core, Gpr::RSP, sp.wrapping_add(8));
                }
                Insn::LockCmpxchg { base, disp, src } => {
                    let addr = rd(self, base).wrapping_add(disp as i64 as u64);
                    let expected = rd(self, Gpr::RAX);
                    let newval = rd(self, src);
                    let cur = self.machine.mem.read_u64(addr);
                    if cur == expected {
                        self.machine.mem.write_u64(addr, newval);
                        self.write_guest_flags(core, Flags::from_sub(0, 0)); // ZF=1
                    } else {
                        self.write_guest_reg(core, Gpr::RAX, cur);
                        self.write_guest_flags(core, Flags::from_sub(1, 0)); // ZF=0
                    }
                }
                Insn::LockXadd { base, disp, src } => {
                    let addr = rd(self, base).wrapping_add(disp as i64 as u64);
                    let add = rd(self, src);
                    let cur = self.machine.mem.read_u64(addr);
                    self.machine.mem.write_u64(addr, cur.wrapping_add(add));
                    self.write_guest_reg(core, src, cur);
                }
                Insn::Mfence => self.machine.drain_store_buffer(core),
                Insn::Nop => {}
                Insn::Hlt => {
                    self.machine.halt_core(core);
                    return Ok(None);
                }
                Insn::Syscall => {
                    return match self.do_syscall(core, next)? {
                        SyscallOutcome::Resume => Ok(Some(next)),
                        SyscallOutcome::Halted => Ok(None),
                        // Busy-wait: retry the syscall instruction itself.
                        SyscallOutcome::Retry => Ok(Some(pc)),
                    };
                }
            }
            pc = next;
        }
        // Block cap reached (same limit as translated TBs): hand the next
        // pc back so the resume loop can retry translation there.
        Ok(Some(pc))
    }

    /// Builds the marshaling thunk that calls a native host function from
    /// guest code (§6.2): copy guest argument registers into the host
    /// ABI's, call, write the result back, and perform the guest `ret`.
    fn build_native_thunk(&self, func: u16, nargs: usize) -> Vec<HostInsn> {
        let mut code = Vec::new();
        if self.setup == Setup::Native {
            // Native ABI: direct register moves, no memory marshaling.
            for (i, g) in Gpr::ARGS.iter().take(nargs).enumerate() {
                code.push(HostInsn::MovReg { dst: Xreg(i as u8), src: Xreg(6 + g.0) });
            }
            code.push(HostInsn::NativeCall { func });
            code.push(HostInsn::MovReg { dst: Xreg(6 + Gpr::RAX.0), src: Xreg(0) });
            // ret: pop the return address from the guest stack (RSP = X10).
            let rsp = Xreg(6 + Gpr::RSP.0);
            code.push(HostInsn::Ldr { dst: Xreg(29), base: rsp, off: 0, order: MemOrder::Plain });
            code.push(HostInsn::AluImm {
                op: risotto_host_arm::AOp::Add,
                dst: rsp,
                a: rsp,
                imm: 8,
            });
            code.push(HostInsn::ExitTb(TbExitKind::JumpReg { reg: Xreg(29) }));
        } else {
            // DBT ABI: marshal through the env block — this load/store
            // traffic *is* the marshaling overhead visible in Fig. 14.
            for (i, g) in Gpr::ARGS.iter().take(nargs).enumerate() {
                code.push(HostInsn::Ldr {
                    dst: Xreg(i as u8),
                    base: ENV_BASE,
                    off: g.0 as i32 * 8,
                    order: MemOrder::Plain,
                });
            }
            code.push(HostInsn::NativeCall { func });
            code.push(HostInsn::Str {
                src: Xreg(0),
                base: ENV_BASE,
                off: Gpr::RAX.0 as i32 * 8,
                order: MemOrder::Plain,
            });
            // Guest ret through the env'd RSP.
            code.push(HostInsn::Ldr {
                dst: Xreg(25),
                base: ENV_BASE,
                off: Gpr::RSP.0 as i32 * 8,
                order: MemOrder::Plain,
            });
            code.push(HostInsn::Ldr {
                dst: Xreg(26),
                base: Xreg(25),
                off: 0,
                order: MemOrder::Plain,
            });
            code.push(HostInsn::AluImm {
                op: risotto_host_arm::AOp::Add,
                dst: Xreg(25),
                a: Xreg(25),
                imm: 8,
            });
            code.push(HostInsn::Str {
                src: Xreg(25),
                base: ENV_BASE,
                off: Gpr::RSP.0 as i32 * 8,
                order: MemOrder::Plain,
            });
            code.push(HostInsn::ExitTb(TbExitKind::JumpReg { reg: Xreg(26) }));
        }
        code
    }

    /// Services one guest syscall; `next` is the guest pc following it.
    fn do_syscall(&mut self, core: usize, next: u64) -> Result<SyscallOutcome, EmuError> {
        let nth = self.syscall_attempts;
        self.syscall_attempts += 1;
        if self.plan.syscall_fails(nth) {
            self.faults_injected += 1;
            if self.obs.tracing {
                self.obs.emit(
                    TraceStage::Fault,
                    Some(core),
                    Some(next),
                    None,
                    None,
                    "injected syscall fault (unrecoverable)".to_owned(),
                );
            }
            return Err(EmuError::Injected { site: FaultSite::Syscall, core, pc: next });
        }
        let n = self.read_guest_reg(core, Gpr::RAX);
        let a1 = self.read_guest_reg(core, Gpr::RDI);
        let a2 = self.read_guest_reg(core, Gpr::RSI);
        let a3 = self.read_guest_reg(core, Gpr::RDX);
        match n {
            syscalls::EXIT => {
                self.exit_vals[core] = Some(a1);
                self.machine.halt_core(core);
                self.syscalls_completed += 1;
                return Ok(SyscallOutcome::Halted);
            }
            syscalls::WRITE => {
                let bytes = self.machine.mem.read_bytes(a2, a3 as usize);
                self.output.extend_from_slice(&bytes);
                self.write_guest_reg(core, Gpr::RAX, a3);
            }
            syscalls::SPAWN => {
                // Pick the child by the engine-side started flag, not
                // `Machine::idle_core`: a core whose entry block fell back
                // to the interpreter is busy without ever having been
                // `start_core`'d, and the machine alone would hand it out
                // again (a spawn could then stomp the spawning core).
                let child = (0..self.machine.n_cores())
                    .find(|&c| !self.core_started[c])
                    .ok_or(EmuError::TooManyThreads { core, pc: next })?;
                self.init_core(child, Some(a2));
                self.resume_at(child, a1)?;
                // The child begins *now*, not at machine time zero — it
                // inherits the spawning core's clock (plus a small fork
                // cost), so the discrete-event scheduler interleaves it
                // realistically.
                self.machine.add_cycles(child, self.machine.core_cycles(core) + 50);
                self.write_guest_reg(core, Gpr::RAX, child as u64);
            }
            syscalls::JOIN => {
                let target = a1 as usize;
                if target >= self.machine.n_cores() || target == core {
                    return Err(EmuError::BadJoin { tid: a1, core, pc: next });
                }
                if self.machine.core_halted(target) && self.core_started[target] {
                    let v = self.exit_vals[target].unwrap_or(0);
                    self.write_guest_reg(core, Gpr::RAX, v);
                } else {
                    // Busy-wait: charge some cycles and retry the syscall.
                    self.machine.add_cycles(core, 64);
                    return Ok(SyscallOutcome::Retry);
                }
            }
            syscalls::GETTID => {
                self.write_guest_reg(core, Gpr::RAX, core as u64);
            }
            other => return Err(EmuError::BadSyscall { n: other, core, pc: next }),
        }
        self.syscalls_completed += 1;
        Ok(SyscallOutcome::Resume)
    }

    /// Applies the plan's TB-cache faults: explicit one-shot corruptions
    /// (detected at the cache-entry checksum, so the entry is discarded
    /// and later re-translated — corrupted code never executes) and
    /// background eviction pressure.
    fn inject_tb_cache_faults(&mut self) {
        if self.plan.is_empty() {
            return;
        }
        for pc in self.plan.pending_corruptions() {
            if self.machine.lookup_tb(pc).is_some() && self.plan.take_corrupt_tb(pc) {
                self.machine.unmap_tb(pc);
                if self.obs.tracing {
                    self.obs.emit(
                        TraceStage::Fault,
                        None,
                        Some(pc),
                        self.tb_ids.get(&pc).copied(),
                        None,
                        "TB-cache corruption detected; entry discarded".to_owned(),
                    );
                }
            }
        }
        if self.plan.tb_cache_strikes() {
            let mut tbs = self.machine.mapped_tbs();
            if !tbs.is_empty() {
                tbs.sort_unstable();
                let victim = tbs[self.plan.pick(tbs.len())];
                self.machine.unmap_tb(victim);
            }
        }
    }

    /// The guest pc whose translation contains `host_pc`, if recoverable.
    fn guest_pc_of_host(&self, host_pc: u64) -> Option<u64> {
        self.machine
            .mapped_tbs()
            .into_iter()
            .filter_map(|g| self.machine.lookup_tb(g).map(|h| (g, h)))
            .filter(|&(_, h)| h <= host_pc)
            // `mapped_tbs` order is map-internal; tie-break equal host
            // bases on the lowest guest pc so the answer is stable.
            .max_by_key(|&(g, h)| (h, std::cmp::Reverse(g)))
            .map(|(g, _)| g)
    }

    /// Observable-progress marker for the watchdog.
    fn progress_marker(&self) -> (usize, usize, usize, u64, usize, usize, u64) {
        let halted = (0..self.machine.n_cores()).filter(|&c| self.machine.core_halted(c)).count();
        let exited = self.exit_vals.iter().filter(|v| v.is_some()).count();
        (
            self.tb_count,
            self.retranslations,
            self.output.len(),
            self.syscalls_completed,
            halted,
            exited,
            self.sb_stats.promotions,
        )
    }

    fn dump_cores(&self) -> Vec<CoreDump> {
        (0..self.machine.n_cores())
            .map(|c| CoreDump {
                core: c,
                host_pc: self.machine.core_pc(c),
                cycles: self.machine.core_cycles(c),
                halted: self.machine.core_halted(c),
            })
            .collect()
    }

    /// Runs the program to completion (all threads halted).
    ///
    /// # Errors
    ///
    /// Unrecoverable translation faults, runaway execution (`fuel` steps,
    /// counting both machine steps and fallback-interpreted guest
    /// instructions), syscall misuse, injected syscall faults, host-code
    /// faults, and — with [`Emulator::set_watchdog`] armed — stalls.
    pub fn run(&mut self, fuel: u64) -> Result<Report, EmuError> {
        self.fuel_limit = fuel;
        let base_steps = self.machine.total_steps();
        self.init_core(0, None);
        let entry = self.entry;
        self.resume_at(0, entry)?;
        let mut last_marker = self.progress_marker();
        let mut no_progress: u64 = 0;
        loop {
            let used = (self.machine.total_steps() - base_steps) + self.interp_steps;
            let remaining = fuel.saturating_sub(used);
            let slice = match self.watchdog {
                Some(w) => remaining.min(w),
                None => remaining,
            };
            let before = self.machine.total_steps();
            let ev = self.machine.run(slice);
            self.inject_tb_cache_faults();
            match ev {
                Event::AllHalted => break,
                Event::TranslationMiss { core, guest_pc } => {
                    self.resume_at(core, guest_pc)?;
                }
                Event::GuestSyscall { core, next } => {
                    if let SyscallOutcome::Resume = self.do_syscall(core, next)? {
                        self.resume_at(core, next)?;
                    }
                }
                Event::OutOfFuel => {
                    let used = (self.machine.total_steps() - base_steps) + self.interp_steps;
                    if used >= fuel {
                        return Err(EmuError::OutOfFuel);
                    }
                    // Otherwise just a watchdog slice boundary: fall
                    // through to the progress check.
                }
                Event::HotTb { core, guest_pc } => {
                    // The transfer already completed: promotion (or a
                    // decline) needs no resume and cannot perturb the
                    // core's execution.
                    self.on_hot_tb(core, guest_pc);
                }
                Event::HostFault { core, host_pc, kind } => {
                    return Err(EmuError::HostFault {
                        kind,
                        core,
                        host_pc,
                        guest_pc: self.guest_pc_of_host(host_pc),
                    });
                }
            }
            let marker = self.progress_marker();
            if marker != last_marker {
                last_marker = marker;
                no_progress = 0;
            } else {
                no_progress += (self.machine.total_steps() - before).max(1);
                if let Some(w) = self.watchdog {
                    if no_progress >= w {
                        return Err(EmuError::Stalled {
                            steps: no_progress,
                            cores: self.dump_cores(),
                        });
                    }
                }
            }
        }
        // HLT'd threads report guest RAX as their exit value.
        for core in 0..self.machine.n_cores() {
            if self.core_started[core] && self.exit_vals[core].is_none() {
                self.exit_vals[core] = Some(self.read_guest_reg(core, Gpr::RAX));
            }
        }
        self.obs.sink.flush();
        Ok(Report {
            cycles: self.machine.clock(),
            tb_count: self.tb_count,
            code_bytes: self.machine.code_size(),
            stats: self.machine.total_stats(),
            exit_vals: self.exit_vals.clone(),
            output: self.output.clone(),
            fallback_blocks: self.fallback_blocks,
            retranslations: self.retranslations,
            chain: self.machine.chain_stats(),
            opt: self.opt_totals,
            sb: self.sb_stats(),
            template: self.template_stats,
        })
    }

    /// Mirrors every engine/machine counter into the metrics registry
    /// (the stage histograms are observed live during translation).
    fn refresh_metrics(&mut self) {
        let chain = self.machine.chain_stats();
        let cache = self.machine.cache_stats();
        let stats = self.machine.total_stats();
        let r = &mut self.obs.registry;
        r.set_counter("translate.blocks", self.tb_count as u64);
        r.set_counter("translate.retranslations", self.retranslations as u64);
        r.set_counter("translate.fallback_blocks", self.fallback_blocks as u64);
        r.set_counter("translate.interp_steps", self.interp_steps);
        r.set_counter("translate.tbcache_hits", self.tbcache_hits);
        r.set_counter("translate.insns", self.tier1_insns);
        r.set_counter("fault.injected", self.faults_injected);
        r.set_counter("template.blocks", self.template_stats.blocks);
        r.set_counter("template.insns", self.template_stats.insns);
        r.set_counter("template.promotions", self.template_stats.promotions);
        r.set_counter("template.promotion_failures", self.template_stats.promotion_failures);
        r.set_counter("opt.folded", self.opt_totals.folded as u64);
        r.set_counter("opt.loads_forwarded", self.opt_totals.loads_forwarded as u64);
        r.set_counter("opt.stores_eliminated", self.opt_totals.stores_eliminated as u64);
        r.set_counter("opt.fences_merged", self.opt_totals.fences_merged as u64);
        r.set_counter("opt.dce_removed", self.opt_totals.dce_removed as u64);
        for (i, k) in FenceKind::TCG_ALL.iter().enumerate() {
            let n = k.tcg_name().expect("TCG fence has a short name");
            r.set_counter(&format!("fence.inserted.{n}"), self.fence_inserted[i]);
            r.set_counter(
                &format!("fence.merged.{n}"),
                self.opt_totals.fences_merged_by_kind[i] as u64,
            );
        }
        r.set_counter("chain.hits", chain.chain_hits);
        r.set_counter("chain.links", chain.chain_links);
        r.set_counter("chain.flushes", chain.chain_flushes);
        r.set_counter("jcache.hits", chain.dispatch_hits);
        r.set_counter("jcache.misses", chain.dispatch_misses);
        r.set_counter("tbcache.installs", cache.installs);
        r.set_counter("tbcache.region_reuses", cache.region_reuses);
        r.set_counter("tbcache.evictions", cache.evictions);
        r.set_counter("exec.insns", stats.insns);
        r.set_counter("exec.atomics", stats.atomics);
        r.set_counter("exec.helper_calls", stats.helper_calls);
        r.set_counter("exec.native_calls", stats.native_calls);
        r.set_counter("fence.exec.dmb_ld", stats.dmb[0]);
        r.set_counter("fence.exec.dmb_st", stats.dmb[1]);
        r.set_counter("fence.exec.dmb_ff", stats.dmb[2]);
        r.set_counter("fence.exec.cycles", stats.fence_cycles);
        r.set_counter("engine.syscalls", self.syscalls_completed);
        r.set_counter("sb.promotions", self.sb_stats.promotions);
        r.set_counter("sb.promotion_failures", self.sb_stats.failures);
        r.set_counter("sb.declined", self.sb_stats.declined);
        r.set_counter("sb.installs", cache.sb_installs);
        r.set_counter("sb.subsumed_tbs", cache.sb_subsumed);
        r.set_counter("sb.entries", chain.sb_entries);
        r.set_counter("sb.tbs_merged", self.sb_stats.tbs_merged);
        r.set_counter("sb.side_exits", self.sb_stats.side_exits);
        r.set_counter("sb.fences_merged_cross", self.sb_opt.fences_merged_cross as u64);
        let violations = self.verify_ir + self.verify_fence + self.verify_encoding;
        r.set_counter("verify.checked", self.verify_checked);
        r.set_counter("verify.violations", violations);
        r.set_counter("verify.ir_violations", self.verify_ir);
        r.set_counter("verify.fence_violations", self.verify_fence);
        r.set_counter("verify.encoding_violations", self.verify_encoding);
        let asum = self.analysis.as_ref().map(|f| f.summary()).unwrap_or_default();
        r.set_gauge("analysis.enabled", self.analysis.is_some() as u64);
        r.set_counter("analysis.sites", asum.sites);
        r.set_counter("analysis.private", asum.private);
        r.set_counter("analysis.readonly", asum.readonly);
        r.set_counter("analysis.shared", asum.shared);
        r.set_counter("analysis.atomics", asum.atomics);
        r.set_counter("analysis.relaxable", asum.relaxable);
        r.set_counter("analysis.poisons", asum.poisons);
        r.set_counter("analysis.lints", asum.lints);
        r.set_counter("analysis.instances", asum.instances);
        r.set_counter("analysis.refined_loops", asum.refined_loops);
        r.set_counter("analysis.relaxed", self.analysis_relaxed);
        r.set_counter("analysis.relaxed_blocks", self.analysis_relaxed_blocks);
        r.set_counter("analysis.cache_hits", self.analysis_cache_hits);
        r.set_counter("analysis.cache_misses", self.analysis_cache_misses);
        r.set_counter("analysis.hint_folded", self.hint_totals.folded as u64);
        r.set_counter("analysis.branches_pruned", self.hint_totals.branches_pruned as u64);
        let ra = self.regalloc_totals;
        r.set_counter("regalloc.env_loads", ra.env_loads);
        r.set_counter("regalloc.env_stores", ra.env_stores);
        r.set_counter("regalloc.env_loads_eliminated", ra.env_loads_eliminated);
        r.set_counter("regalloc.env_stores_eliminated", ra.env_stores_eliminated);
        r.set_counter("regalloc.spills", ra.spills);
        r.set_counter("regalloc.reloads", ra.reloads);
        r.set_counter("regalloc.pinned_regs", ra.pinned_regs);
        r.set_gauge("exec.cycles", self.machine.clock());
        r.set_gauge("exec.cores", self.machine.n_cores() as u64);
        r.set_gauge("tbcache.resident", self.machine.mapped_tbs().len() as u64);
        r.set_gauge("code.bytes", self.machine.code_size() as u64);
        for c in 0..self.machine.n_cores() {
            let s = self.machine.stats(c);
            r.set_gauge(&format!("core.{c}.insns"), s.insns);
            r.set_gauge(&format!("core.{c}.cycles"), self.machine.core_cycles(c));
        }
    }

    /// Rebuilds the hot-TB profiler from the machine's transfer profile
    /// plus the engine's dispatch-loop entries.
    fn rebuild_profiler(&mut self) {
        self.obs.profiler.clear();
        let resume: Vec<(u64, u64, u64)> =
            self.resume_profile.iter().map(|(&pc, &(e, m))| (pc, e, m)).collect();
        let machine: Vec<(u64, u64, u64)> = self
            .machine
            .tb_profile()
            .map(|p| p.iter().map(|(&pc, t)| (pc, t.execs, t.chain_misses)).collect())
            .unwrap_or_default();
        for (pc, execs, misses) in resume.into_iter().chain(machine) {
            let tb_id = self.tb_ids.get(&pc).copied().unwrap_or(0);
            self.obs.profiler.record(tb_id, pc, execs, misses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_counts_clears_and_bounds() {
        let mut q = Quarantine::default();
        assert_eq!(q.attempts(0x1000), 0);
        q.note_failure(0x1000);
        q.note_failure(0x1000);
        assert_eq!(q.attempts(0x1000), 2);
        assert!(q.contains(0x1000));
        q.clear(0x1000);
        assert!(!q.contains(0x1000));
        assert_eq!(q.attempts(0x1000), 0);
    }

    #[test]
    fn quarantine_capacity_is_enforced_with_lru_eviction() {
        let mut q = Quarantine::default();
        for pc in 0..QUARANTINE_CAPACITY as u64 {
            q.note_failure(pc);
        }
        assert_eq!(q.len(), QUARANTINE_CAPACITY);
        // Touch pc 0 so it is no longer the LRU victim.
        assert_eq!(q.attempts(0), 1);
        q.note_failure(0xDEAD_0000);
        assert_eq!(q.len(), QUARANTINE_CAPACITY, "insertion beyond capacity must evict");
        assert!(q.contains(0xDEAD_0000));
        assert!(q.contains(0), "recently touched entry must survive eviction");
        assert!(!q.contains(1), "least-recently-touched entry is the victim");
        // A sweep of fresh failing pcs can never grow the map.
        for pc in 0..10 * QUARANTINE_CAPACITY as u64 {
            q.note_failure(0x4000_0000 + pc);
            assert!(q.len() <= QUARANTINE_CAPACITY);
        }
    }

    #[test]
    fn quarantine_retry_counts_survive_unrelated_churn() {
        let mut q = Quarantine::default();
        q.note_failure(0x42);
        q.note_failure(0x42);
        q.note_failure(0x42);
        for pc in 0..(QUARANTINE_CAPACITY / 2) as u64 {
            q.note_failure(0x9000_0000 + pc);
        }
        assert_eq!(q.attempts(0x42), 3, "below capacity, counts are exact");
    }
}
