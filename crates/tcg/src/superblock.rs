//! Superblock (hot-trace) formation for the tier-2 recompiler.
//!
//! The engine's tier policy picks a *trace* — a head block plus its
//! dominant chain of successors — and this module stitches the freshly
//! retranslated constituent [`TcgBlock`]s into one region IR:
//!
//! * temps are renumbered into a single SSA space,
//! * every seam becomes a [`TcgOp::TbBoundary`] marker,
//! * a `CondJump` whose profiled direction continues on the trace
//!   becomes a [`TcgOp::SideExit`] guard for the other direction,
//! * the last block's exit becomes the superblock's exit.
//!
//! The region then goes through [`optimize_region`], which is the full
//! tier-1 pass pipeline — the markers make every pass boundary-aware, so
//! fence merging, load forwarding and WAW elimination fire *across*
//! former TB boundaries exactly where the Fig. 10 side conditions (plus
//! the side-exit barrier rules) allow, and nowhere else.

use crate::ir::{TbExit, TcgBlock, TcgOp, Temp};
use crate::opt::{optimize_with, OptPolicy, OptStats, PassConfig};

/// Why a trace could not be stitched into a superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// Fewer than two constituent blocks — nothing to merge.
    TooShort,
    /// A non-final block ends in an exit that cannot continue on a
    /// trace (`JumpReg`, `Halt` or `Syscall`).
    UntraceableExit {
        /// Guest pc of the offending block.
        guest_pc: u64,
    },
    /// Block `i+1` does not start at a guest pc block `i` can reach.
    Discontiguous {
        /// Guest pc of the block whose exit does not reach its successor.
        guest_pc: u64,
        /// Guest pc the next block actually starts at.
        next_pc: u64,
    },
}

impl std::fmt::Display for StitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StitchError::TooShort => write!(f, "trace has fewer than two blocks"),
            StitchError::UntraceableExit { guest_pc } => {
                write!(f, "block at {guest_pc:#x} ends in an untraceable exit")
            }
            StitchError::Discontiguous { guest_pc, next_pc } => {
                write!(f, "block at {guest_pc:#x} cannot reach successor at {next_pc:#x}")
            }
        }
    }
}

impl std::error::Error for StitchError {}

/// Shape statistics of a stitched (and optionally optimized) superblock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockShape {
    /// Constituent translation blocks merged into the trace.
    pub tbs: usize,
    /// `SideExit` guards in the stitched region.
    pub side_exits: usize,
}

/// Measures a region's marker counts (valid before or after optimizing —
/// neither marker kind is ever removed by the passes).
pub fn shape_of(block: &TcgBlock) -> SuperblockShape {
    SuperblockShape {
        tbs: 1 + block.count_ops(|o| matches!(o, TcgOp::TbBoundary { .. })),
        side_exits: block.count_ops(|o| matches!(o, TcgOp::SideExit { .. })),
    }
}

/// Is the block's *last* memory access a load? Under the verified
/// trailing placement (§4: `ld; Frm`, `Fww; st`) such a block ends with
/// its `Frm` free to sink to the seam — only register ops follow it.
fn tail_is_load(b: &TcgBlock) -> bool {
    b.ops
        .iter()
        .rev()
        .find(|o| o.is_memory_access())
        .is_some_and(|o| matches!(o, TcgOp::Ld { .. } | TcgOp::Ld8 { .. }))
}

/// Is the block's *first* memory access a store? Its leading `Fww` then
/// has an unobstructed path back to the seam.
fn head_is_store(b: &TcgBlock) -> bool {
    b.ops
        .iter()
        .find(|o| o.is_memory_access())
        .is_some_and(|o| matches!(o, TcgOp::St { .. } | TcgOp::St8 { .. }))
}

/// Picks the best head for a *cyclic* trace (one whose last block's
/// on-trace successor is the head). Every rotation of such a trace
/// executes the same loop, so the head choice is free — but it decides
/// which seam falls at the (unoptimizable) wrap-around. Returns the
/// index into `parts` of the head that maximizes in-trace seams where a
/// load-tailed block meets a store-headed one: the only seam shape whose
/// `Frm`/`Fww` pair can merge under the verified trailing placement.
/// Prefers the current head (index 0) on ties.
pub fn best_rotation(parts: &[TcgBlock]) -> usize {
    let n = parts.len();
    if n < 2 {
        return 0;
    }
    let ld_tail: Vec<bool> = parts.iter().map(tail_is_load).collect();
    let st_head: Vec<bool> = parts.iter().map(head_is_store).collect();
    let score =
        |r: usize| (0..n - 1).filter(|&i| ld_tail[(r + i) % n] && st_head[(r + i + 1) % n]).count();
    (0..n).max_by_key(|&r| (score(r), std::cmp::Reverse(r))).unwrap_or(0)
}

/// Stitches a trace of translation blocks into one superblock.
///
/// `parts` must be in trace order; each non-final block's exit must
/// reach the next block's `guest_pc` either unconditionally (`Jump`) or
/// as one arm of a `CondJump` (the other arm becomes a side exit). The
/// result's `guest_pc` is the head's, and its `guest_len` sums the
/// constituents (the trace need not be contiguous in guest memory).
pub fn stitch(parts: Vec<TcgBlock>) -> Result<TcgBlock, StitchError> {
    if parts.len() < 2 {
        return Err(StitchError::TooShort);
    }
    let pcs: Vec<u64> = parts.iter().map(|p| p.guest_pc).collect();
    let mut sb = TcgBlock {
        guest_pc: pcs[0],
        guest_len: 0,
        ops: Vec::with_capacity(parts.iter().map(|p| p.ops.len() + 2).sum()),
        exit: TbExit::Halt,
        n_temps: 0,
    };
    let last = parts.len() - 1;
    for (i, part) in parts.into_iter().enumerate() {
        let base = sb.n_temps;
        sb.guest_len += part.guest_len;
        if i > 0 {
            sb.ops.push(TcgOp::TbBoundary { pc: part.guest_pc });
        }
        for mut op in part.ops {
            shift_op(&mut op, base);
            sb.ops.push(op);
        }
        sb.n_temps += part.n_temps;
        let exit = shift_exit(part.exit, base);
        if i == last {
            sb.exit = exit;
            break;
        }
        let next = pcs[i + 1];
        match exit {
            TbExit::Jump(t) if t == next => {}
            TbExit::CondJump { taken, fallthrough, .. } if taken == next && fallthrough == next => {
                // Both arms reach the successor: no guard needed.
            }
            TbExit::CondJump { flag, taken, fallthrough } if taken == next => {
                sb.ops.push(TcgOp::SideExit { flag, stay_if: true, target: fallthrough });
            }
            TbExit::CondJump { flag, taken, fallthrough } if fallthrough == next => {
                sb.ops.push(TcgOp::SideExit { flag, stay_if: false, target: taken });
            }
            TbExit::Jump(_) | TbExit::CondJump { .. } => {
                return Err(StitchError::Discontiguous { guest_pc: pcs[i], next_pc: next });
            }
            TbExit::JumpReg(_) | TbExit::Halt | TbExit::Syscall { .. } => {
                return Err(StitchError::UntraceableExit { guest_pc: pcs[i] });
            }
        }
    }
    Ok(sb)
}

fn shift_op(op: &mut TcgOp, base: u32) {
    let fix = |t: &mut Temp| t.0 += base;
    match op {
        TcgOp::MovI { dst, .. } | TcgOp::GetReg { dst, .. } => fix(dst),
        TcgOp::Mov { dst, src } => {
            fix(dst);
            fix(src);
        }
        TcgOp::SetReg { src, .. } => fix(src),
        TcgOp::Ld { dst, addr } | TcgOp::Ld8 { dst, addr } => {
            fix(dst);
            fix(addr);
        }
        TcgOp::St { addr, src } | TcgOp::St8 { addr, src } => {
            fix(addr);
            fix(src);
        }
        TcgOp::Bin { dst, a, b, .. } | TcgOp::Setcond { dst, a, b, .. } => {
            fix(dst);
            fix(a);
            fix(b);
        }
        TcgOp::Cas { dst, addr, expect, new } => {
            fix(dst);
            fix(addr);
            fix(expect);
            fix(new);
        }
        TcgOp::AtomicAdd { dst, addr, val } => {
            fix(dst);
            fix(addr);
            fix(val);
        }
        TcgOp::CallHelper { args, ret, .. } => {
            args.iter_mut().for_each(fix);
            if let Some(r) = ret {
                fix(r);
            }
        }
        TcgOp::SideExit { flag, .. } => fix(flag),
        TcgOp::Fence(_) | TcgOp::TbBoundary { .. } => {}
    }
}

fn shift_exit(exit: TbExit, base: u32) -> TbExit {
    match exit {
        TbExit::JumpReg(t) => TbExit::JumpReg(Temp(t.0 + base)),
        TbExit::CondJump { flag, taken, fallthrough } => {
            TbExit::CondJump { flag: Temp(flag.0 + base), taken, fallthrough }
        }
        other => other,
    }
}

/// Runs the full tier-1 pass pipeline over a stitched region. The
/// markers inserted by [`stitch`] make every pass boundary-aware;
/// [`OptStats::fences_merged_cross`] counts the merges the intra-block
/// tier-1 pass could never have performed.
pub fn optimize_region(block: &mut TcgBlock, policy: OptPolicy, passes: PassConfig) -> OptStats {
    optimize_with(block, policy, passes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_block, EvalExit};
    use crate::ir::env;
    use risotto_guest_x86::SparseMem;
    use risotto_memmodel::FenceKind;

    fn blank(pc: u64) -> TcgBlock {
        TcgBlock { guest_pc: pc, guest_len: 4, ops: vec![], exit: TbExit::Halt, n_temps: 0 }
    }

    /// `env[dst] = env[src] + k`, plus a fence on each side, ending in
    /// the given exit.
    fn addk_block(pc: u64, src: u8, dst: u8, k: u64, exit: TbExit) -> TcgBlock {
        let mut b = blank(pc);
        let a = b.new_temp();
        let c = b.new_temp();
        let r = b.new_temp();
        b.ops = vec![
            TcgOp::Fence(FenceKind::Frm),
            TcgOp::GetReg { dst: a, reg: src },
            TcgOp::MovI { dst: c, val: k },
            TcgOp::Bin { op: crate::ir::BinOp::Add, dst: r, a, b: c },
            TcgOp::SetReg { reg: dst, src: r },
            TcgOp::Fence(FenceKind::Fww),
        ];
        b.exit = exit;
        b
    }

    #[test]
    fn stitch_rejects_short_traces() {
        assert_eq!(stitch(vec![]), Err(StitchError::TooShort));
        assert_eq!(stitch(vec![blank(0x10)]), Err(StitchError::TooShort));
    }

    #[test]
    fn stitch_rejects_untraceable_and_discontiguous() {
        let a = addk_block(0x10, 0, 0, 1, TbExit::Halt);
        let b = addk_block(0x20, 0, 0, 1, TbExit::Halt);
        assert_eq!(
            stitch(vec![a, b.clone()]),
            Err(StitchError::UntraceableExit { guest_pc: 0x10 })
        );
        let a = addk_block(0x10, 0, 0, 1, TbExit::Jump(0x999));
        assert_eq!(
            stitch(vec![a, b]),
            Err(StitchError::Discontiguous { guest_pc: 0x10, next_pc: 0x20 })
        );
    }

    #[test]
    fn straight_line_stitch_is_equivalent_and_marked() {
        let a = addk_block(0x10, 0, 1, 5, TbExit::Jump(0x20));
        let b = addk_block(0x20, 1, 2, 7, TbExit::Jump(0x30));
        let sb = stitch(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(sb.guest_pc, 0x10);
        assert_eq!(sb.n_temps, a.n_temps + b.n_temps);
        assert_eq!(shape_of(&sb), SuperblockShape { tbs: 2, side_exits: 0 });
        assert_eq!(sb.exit, TbExit::Jump(0x30));

        // Superblock evaluation matches running the parts in sequence.
        let mut e1 = [3u64; env::COUNT];
        let mut e2 = e1;
        let mut m1 = SparseMem::new();
        let mut m2 = SparseMem::new();
        assert_eq!(eval_block(&a, &mut e1, &mut m1), EvalExit::Jump(0x20));
        assert_eq!(eval_block(&b, &mut e1, &mut m1), EvalExit::Jump(0x30));
        assert_eq!(eval_block(&sb, &mut e2, &mut m2), EvalExit::Jump(0x30));
        assert_eq!(e1, e2);
    }

    #[test]
    fn cond_seam_becomes_side_exit_with_correct_polarity() {
        // Head tests env[0] and falls through to 0x20 when zero.
        let mut head = blank(0x10);
        let v = head.new_temp();
        let z = head.new_temp();
        let f = head.new_temp();
        head.ops = vec![
            TcgOp::GetReg { dst: v, reg: 0 },
            TcgOp::MovI { dst: z, val: 0 },
            TcgOp::Setcond { cond: crate::ir::CondOp::Ne, dst: f, a: v, b: z },
        ];
        head.exit = TbExit::CondJump { flag: f, taken: 0x80, fallthrough: 0x20 };
        let tail = addk_block(0x20, 0, 1, 9, TbExit::Jump(0x30));

        let sb = stitch(vec![head, tail]).unwrap();
        assert_eq!(shape_of(&sb), SuperblockShape { tbs: 2, side_exits: 1 });
        assert!(sb
            .ops
            .iter()
            .any(|o| matches!(o, TcgOp::SideExit { stay_if: false, target: 0x80, .. })));

        // On-trace: env[0] == 0 stays and runs the tail.
        let mut e = [0u64; env::COUNT];
        let mut m = SparseMem::new();
        assert_eq!(eval_block(&sb, &mut e, &mut m), EvalExit::Jump(0x30));
        assert_eq!(e[1], 9);

        // Off-trace: env[0] != 0 leaves at the side exit before the tail.
        let mut e = [0u64; env::COUNT];
        e[0] = 1;
        let mut m = SparseMem::new();
        assert_eq!(eval_block(&sb, &mut e, &mut m), EvalExit::Jump(0x80));
        assert_eq!(e[1], 0, "tail must not run on the off-trace path");
    }

    #[test]
    fn region_pipeline_merges_fences_across_the_seam() {
        // …Fww | TbBoundary | Frm… — the intra-block pass can never see
        // this pair; the region pass merges it and attributes the merge.
        let a = addk_block(0x10, 0, 1, 5, TbExit::Jump(0x20));
        let b = addk_block(0x20, 1, 2, 7, TbExit::Jump(0x30));
        let mut sb = stitch(vec![a, b]).unwrap();
        let fences_before = sb.count_ops(|o| matches!(o, TcgOp::Fence(_)));
        let stats = optimize_region(&mut sb, OptPolicy::Verified, PassConfig::all());
        assert!(stats.fences_merged_cross >= 1, "seam merge must be counted: {stats:?}");
        assert!(
            sb.count_ops(|o| matches!(o, TcgOp::Fence(_))) < fences_before,
            "cross-boundary fences must actually merge"
        );
        // The seam marker itself survives optimization.
        assert_eq!(shape_of(&sb).tbs, 2);
    }

    /// A block whose last memory access is a load (`ld; Frm` tail, then
    /// register ops only).
    fn load_tail_block(pc: u64, exit: TbExit) -> TcgBlock {
        let mut b = blank(pc);
        let a = b.new_temp();
        let v = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: a, reg: 7 },
            TcgOp::Ld { dst: v, addr: a },
            TcgOp::Fence(FenceKind::Frm),
            TcgOp::SetReg { reg: 1, src: v },
        ];
        b.exit = exit;
        b
    }

    /// A block whose first memory access is a store (`Fww; st` head).
    fn store_head_block(pc: u64, exit: TbExit) -> TcgBlock {
        let mut b = blank(pc);
        let a = b.new_temp();
        let v = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: a, reg: 7 },
            TcgOp::GetReg { dst: v, reg: 1 },
            TcgOp::Fence(FenceKind::Fww),
            TcgOp::St { addr: a, src: v },
        ];
        b.exit = exit;
        b
    }

    #[test]
    fn cyclic_rotation_prefers_load_tail_into_store_head() {
        // The loop st(0x20) → ld(0x10) → st(0x20)… is promotable from
        // either head; only the ld-first rotation puts the mergeable
        // seam inside the trace.
        let st = store_head_block(0x20, TbExit::Jump(0x10));
        let ld = load_tail_block(0x10, TbExit::Jump(0x20));
        assert_eq!(best_rotation(&[st.clone(), ld.clone()]), 1);
        assert_eq!(best_rotation(&[ld.clone(), st.clone()]), 0, "already optimal: keep the head");

        // Proof by pipeline: the rotated trace merges across the seam,
        // the unrotated one cannot (the st/ld pair sits between fences).
        let mut bad = stitch(vec![st.clone(), ld.clone()]).unwrap();
        let bad_stats = optimize_region(&mut bad, OptPolicy::Verified, PassConfig::all());
        assert_eq!(bad_stats.fences_merged_cross, 0);
        let mut good = stitch(vec![ld, st]).unwrap();
        let good_stats = optimize_region(&mut good, OptPolicy::Verified, PassConfig::all());
        assert!(good_stats.fences_merged_cross >= 1, "{good_stats:?}");
    }

    #[test]
    fn rotation_ignores_traces_without_the_pattern() {
        let a = addk_block(0x10, 0, 1, 5, TbExit::Jump(0x20));
        let b = addk_block(0x20, 1, 2, 7, TbExit::Jump(0x10));
        assert_eq!(best_rotation(&[a, b]), 0, "no mergeable seam either way: keep the head");
        assert_eq!(best_rotation(&[]), 0);
        assert_eq!(best_rotation(&[blank(0x10)]), 0);
    }

    #[test]
    fn waw_is_blocked_across_a_side_exit_but_merging_is_not() {
        // St x; SideExit; St x — the off-trace continuation observes the
        // first store, so it must survive; the fences around the exit
        // still merge.
        let mut b = blank(0x10);
        let addr = b.new_temp();
        let v1 = b.new_temp();
        let v2 = b.new_temp();
        let flag = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: addr, reg: 7 },
            TcgOp::MovI { dst: v1, val: 1 },
            TcgOp::MovI { dst: v2, val: 2 },
            TcgOp::MovI { dst: flag, val: 1 },
            TcgOp::St { addr, src: v1 },
            TcgOp::Fence(FenceKind::Frr),
            TcgOp::SideExit { flag, stay_if: true, target: 0x80 },
            TcgOp::Fence(FenceKind::Frr),
            TcgOp::St { addr, src: v2 },
        ];
        let mut c = b.clone();
        let stats = optimize_region(&mut c, OptPolicy::Verified, PassConfig::all());
        assert_eq!(stats.stores_eliminated, 0, "WAW across a side exit is unsound");
        assert_eq!(c.count_ops(|o| matches!(o, TcgOp::St { .. })), 2);
        assert_eq!(stats.fences_merged, 1, "fences still merge across the exit");
        assert_eq!(stats.fences_merged_cross, 1);
    }
}
