//! Per-TB translation validation (static analysis over emitted IR).
//!
//! Risotto's mapping schemes and optimizer side conditions are verified
//! offline (`mappings::check`, `tests/opt_soundness.rs`), but a bug in
//! the *implementation* of a pass — like the PR-2 WAW side-condition
//! regression — only surfaces if some corpus test happens to exercise
//! it. Following the translation-validation approach (Metere et al.,
//! "Sound Transpilation from Binary to Machine-Independent Code"), this
//! module checks every block the pipeline actually emits, at
//! translation time:
//!
//! * [`lint`] — **Pass 1**, IR well-formedness: temps are defined
//!   before use and in range, env register indices resolve, fences are
//!   TCG fences, and the superblock marker ops ([`TcgOp::TbBoundary`],
//!   [`TcgOp::SideExit`]) appear only inside superblocks. ("No ops
//!   after a terminal exit" holds structurally: [`TcgBlock`] carries a
//!   single [`TbExit`] after the op list, so there is nothing to
//!   check.)
//! * [`check_obligations`] — **Pass 2**, the fence-obligation checker:
//!   given the frontend's *reference* IR and the optimized IR, it
//!   recomputes every guest memory event's ordering obligation under
//!   the configured [`FencePlacement`] and statically proves the
//!   optimized block still discharges all of them after fence merging,
//!   WAW store elimination and cross-TB superblock merging. The
//!   discharge predicate is [`FenceKind::tcg_at_least`] over
//!   [`FenceKind::tcg_join`] — the same ordering primitives the
//!   `mappings` scheme/check layer is built on (`tests/verifier.rs`
//!   cross-validates the two on the litmus corpus).
//!
//! Pass 3 (the host-encoding checker) lives in `risotto-host-arm`
//! because it decodes Arm bytes; it reports through the same
//! [`VerifyError`] type.
//!
//! The checker is *complete* for the current pass pipeline (zero false
//! positives): no pass drops or weakens a fence, and merging replaces
//! two fences in an access-free region with their join, so the
//! fence-join between any two surviving accesses is invariant. It is
//! *sound* for the targeted bug classes: a dropped, reordered or
//! downgraded fence weakens some inter-access join, an unsoundly
//! eliminated store (or any eliminated atomic) fails the elimination
//! side conditions, and both are reported as [`VerifyError`]s.

use crate::frontend::FencePlacement;
use crate::ir::{env, TbExit, TcgBlock, TcgOp, Temp};
use crate::opt::{elim_may_cross, ElimKind, OptPolicy};
use risotto_memmodel::FenceKind;
use std::collections::HashMap;

/// Which verifier pass rejected the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyPass {
    /// Pass 1: IR well-formedness lint.
    IrLint,
    /// Pass 2: fence-obligation / translation-validation check.
    FenceObligations,
    /// Pass 3: host-encoding decode-back check (reported by
    /// `risotto-host-arm`).
    Encoding,
}

impl VerifyPass {
    /// Short name used in diagnostics and metrics.
    pub fn name(self) -> &'static str {
        match self {
            VerifyPass::IrLint => "ir-lint",
            VerifyPass::FenceObligations => "fence-obligations",
            VerifyPass::Encoding => "encoding",
        }
    }
}

/// A structured verifier diagnostic.
///
/// The engine attaches the TB id and routes the block into the
/// quarantine/re-translate fault path instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Which pass rejected the block.
    pub pass: VerifyPass,
    /// Guest pc of the rejected block (superblock head for tier-2).
    pub guest_pc: u64,
    /// Index of the offending op in the block the violation was found
    /// in (the optimized block unless the message says otherwise), when
    /// attributable to a single op.
    pub op_index: Option<usize>,
    /// Human-readable statement of the violated obligation.
    pub obligation: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verify[{}] at {:#x}", self.pass.name(), self.guest_pc)?;
        if let Some(i) = self.op_index {
            write!(f, " op {i}")?;
        }
        write!(f, ": {}", self.obligation)
    }
}

impl std::error::Error for VerifyError {}

// ---------------------------------------------------------------------
// Pass 1: IR lint.
// ---------------------------------------------------------------------

/// Pass 1: checks IR well-formedness. `in_superblock` admits the
/// stitcher's marker ops; tier-1 blocks must not contain them.
pub fn lint(block: &TcgBlock, in_superblock: bool) -> Result<(), VerifyError> {
    let err = |op_index: Option<usize>, obligation: String| VerifyError {
        pass: VerifyPass::IrLint,
        guest_pc: block.guest_pc,
        op_index,
        obligation,
    };
    let n = block.n_temps;
    let mut defined = vec![false; n as usize];
    for (i, op) in block.ops.iter().enumerate() {
        for Temp(u) in op.uses() {
            if u >= n {
                return Err(err(Some(i), format!("use of out-of-range temp t{u} (n_temps {n})")));
            }
            if !defined[u as usize] {
                return Err(err(Some(i), format!("use of t{u} before definition")));
            }
        }
        if let Some(Temp(d)) = op.def() {
            if d >= n {
                return Err(err(Some(i), format!("def of out-of-range temp t{d} (n_temps {n})")));
            }
            defined[d as usize] = true;
        }
        match op {
            TcgOp::Fence(k) if !k.is_tcg() => {
                return Err(err(Some(i), format!("non-TCG fence {k:?} in IR")));
            }
            TcgOp::GetReg { reg, .. } | TcgOp::SetReg { reg, .. }
                if *reg as usize >= env::COUNT =>
            {
                return Err(err(Some(i), format!("env register {reg} out of range")));
            }
            TcgOp::SideExit { .. } | TcgOp::TbBoundary { .. } if !in_superblock => {
                return Err(err(Some(i), "superblock marker op in a tier-1 block".into()));
            }
            _ => {}
        }
    }
    let exit_temp = match &block.exit {
        TbExit::JumpReg(t) => Some(*t),
        TbExit::CondJump { flag, .. } => Some(*flag),
        _ => None,
    };
    if let Some(Temp(u)) = exit_temp {
        if u >= n {
            return Err(err(None, format!("exit uses out-of-range temp t{u} (n_temps {n})")));
        }
        if !defined[u as usize] {
            return Err(err(None, format!("exit uses t{u} before definition")));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Pass 2: fence obligations (translation validation).
// ---------------------------------------------------------------------

/// Shape of a guest memory event, for matching reference against
/// optimized IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Ld,
    Ld8,
    St,
    St8,
    Cas,
    AtomicAdd,
    Helper(crate::ir::Helper),
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Ld => "load",
            Shape::Ld8 => "byte load",
            Shape::St => "store",
            Shape::St8 => "byte store",
            Shape::Cas => "cas",
            Shape::AtomicAdd => "atomic add",
            Shape::Helper(_) => "helper call",
        }
    }
}

/// One memory event of a block.
#[derive(Debug, Clone, Copy)]
struct Ev {
    shape: Shape,
    /// Index in `block.ops`.
    op_index: usize,
    /// Defining temp (loads / RMWs / helpers-with-result); stores have
    /// none and are matched positionally.
    def: Option<Temp>,
}

/// The fence-relevant contents of the gap *before* event `i` (or after
/// the last event, for the final gap).
#[derive(Debug, Clone, Default)]
struct Gap {
    fences: Vec<FenceKind>,
    side_exit: bool,
}

impl Gap {
    fn join(&self) -> Option<FenceKind> {
        self.fences.iter().copied().reduce(FenceKind::tcg_join)
    }
}

/// Splits a block into its memory-event sequence and the `events + 1`
/// fence gaps around them.
fn extract(block: &TcgBlock) -> (Vec<Ev>, Vec<Gap>) {
    let mut events = Vec::new();
    let mut gaps = vec![Gap::default()];
    for (i, op) in block.ops.iter().enumerate() {
        let shape = match op {
            TcgOp::Ld { .. } => Some(Shape::Ld),
            TcgOp::Ld8 { .. } => Some(Shape::Ld8),
            TcgOp::St { .. } => Some(Shape::St),
            TcgOp::St8 { .. } => Some(Shape::St8),
            TcgOp::Cas { .. } => Some(Shape::Cas),
            TcgOp::AtomicAdd { .. } => Some(Shape::AtomicAdd),
            TcgOp::CallHelper { helper, .. } => Some(Shape::Helper(*helper)),
            _ => None,
        };
        if let Some(shape) = shape {
            events.push(Ev { shape, op_index: i, def: op.def() });
            gaps.push(Gap::default());
            continue;
        }
        let gap = gaps.last_mut().expect("at least one gap");
        match op {
            TcgOp::Fence(k) => gap.fences.push(*k),
            TcgOp::SideExit { .. } => gap.side_exit = true,
            _ => {}
        }
    }
    (events, gaps)
}

/// Joins every fence in the gap range `lo..=hi`.
fn join_gaps(gaps: &[Gap], lo: usize, hi: usize) -> Option<FenceKind> {
    gaps[lo..=hi].iter().flat_map(|g| g.fences.iter().copied()).reduce(FenceKind::tcg_join)
}

/// `true` when the ordering provided by `have` covers the requirement
/// `need` (`None` = no fence).
fn at_least(have: Option<FenceKind>, need: Option<FenceKind>) -> bool {
    match (have, need) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some(h), Some(n)) => h.tcg_at_least(n),
    }
}

fn fence_name(f: Option<FenceKind>) -> String {
    match f {
        None => "none".into(),
        Some(k) => k.tcg_name().map(str::to_owned).unwrap_or_else(|| format!("{k:?}")),
    }
}

/// The per-event obligations of a mapping scheme: the minimum fence
/// join required before/after each event shape.
fn scheme_obligation(
    placement: FencePlacement,
    shape: Shape,
) -> (Option<FenceKind>, Option<FenceKind>) {
    match (placement, shape) {
        (FencePlacement::VerifiedTrailing, Shape::Ld | Shape::Ld8) => (None, Some(FenceKind::Frm)),
        (FencePlacement::VerifiedTrailing, Shape::St | Shape::St8) => (Some(FenceKind::Fww), None),
        (FencePlacement::QemuLeading, Shape::Ld | Shape::Ld8) => (Some(FenceKind::Frr), None),
        (FencePlacement::QemuLeading, Shape::St | Shape::St8) => (Some(FenceKind::Fmw), None),
        // RMWs and helper calls carry SC semantics in the op itself;
        // FencePlacement::None is the (incorrect) fence-free oracle.
        _ => (None, None),
    }
}

/// Checks that every event of `block` discharges its scheme obligation
/// from the fences in its adjacent gaps. Events whose index is set in
/// `relaxed` carry an analysis-relaxed obligation and are exempt (the
/// relaxation itself was already recomputed from the analysis facts by
/// [`check_obligations_masked`]).
fn check_scheme(
    block: &TcgBlock,
    events: &[Ev],
    gaps: &[Gap],
    placement: FencePlacement,
    relaxed: &[bool],
) -> Result<(), VerifyError> {
    for (i, ev) in events.iter().enumerate() {
        if relaxed.get(i).copied().unwrap_or(false) {
            continue;
        }
        let (before, after) = scheme_obligation(placement, ev.shape);
        if !at_least(gaps[i].join(), before) {
            return Err(VerifyError {
                pass: VerifyPass::FenceObligations,
                guest_pc: block.guest_pc,
                op_index: Some(ev.op_index),
                obligation: format!(
                    "{} requires a leading fence >= {} but the preceding gap provides {}",
                    ev.shape.name(),
                    fence_name(before),
                    fence_name(gaps[i].join()),
                ),
            });
        }
        if !at_least(gaps[i + 1].join(), after) {
            return Err(VerifyError {
                pass: VerifyPass::FenceObligations,
                guest_pc: block.guest_pc,
                op_index: Some(ev.op_index),
                obligation: format!(
                    "{} requires a trailing fence >= {} but the following gap provides {}",
                    ev.shape.name(),
                    fence_name(after),
                    fence_name(gaps[i + 1].join()),
                ),
            });
        }
    }
    Ok(())
}

/// `true` when deleting a store may cross fence `f` under `policy`
/// (mirrors the optimizer's `elim_allowed`).
fn waw_may_cross(f: FenceKind, policy: OptPolicy) -> bool {
    match policy {
        OptPolicy::QemuUnsound => f.is_tcg(),
        OptPolicy::Verified => elim_may_cross(ElimKind::Waw, f),
    }
}

/// Pass 2: proves the optimized block still discharges every ordering
/// obligation of the reference (pre-optimization) block.
///
/// `reference` is the frontend's output for the same guest region —
/// the raw translation for a tier-1 block, the stitched (pre-
/// `optimize_region`) IR for a superblock. The proof has four parts:
///
/// 1. every optimized memory event matches a reference event of the
///    same shape, in order (loads and RMWs by their SSA result temp,
///    stores right-aligned — WAW removes the *earlier* store);
/// 2. every reference event missing from the optimized block was
///    legally eliminable: plain (byte) loads always (irrelevant-read /
///    forwarding elimination), a plain store only when a later store
///    overwrites it with only loads in between, no side exit, and
///    every crossed fence admitted by the policy's WAW side condition;
///    atomics, helper calls and byte stores never;
/// 3. between any two surviving events (and the block edges) the
///    optimized fence join is at least the reference fence join — a
///    dropped, reordered or downgraded fence fails here;
/// 4. each block independently satisfies the per-event scheme
///    obligations of `placement` (e.g. `ld; >=Frm` / `>=Fww; st` for
///    [`FencePlacement::VerifiedTrailing`]).
pub fn check_obligations(
    reference: &TcgBlock,
    optimized: &TcgBlock,
    placement: FencePlacement,
    policy: OptPolicy,
) -> Result<(), VerifyError> {
    check_obligations_masked(reference, optimized, placement, policy, &[])
}

/// Analysis-driven relaxation: removes the scheme-attached fence of each
/// masked memory event from `block`, which must be raw frontend output
/// (the fences still sit adjacent to their access). `mask` is indexed by
/// memory-event order (the order [`check_obligations`] matches events
/// in); entries for RMW/helper events are ignored — their ordering lives
/// in the op itself and can never be relaxed. Returns the number of
/// fences removed.
///
/// Soundness contract: a masked event must be provably core-private or
/// read-only-shared (no inter-thread ordering can be observed through
/// it), which is exactly what `risotto-analysis` certifies and what
/// [`check_obligations_masked`] re-derives from the pristine facts at
/// install time.
pub fn relax_block(block: &mut TcgBlock, placement: FencePlacement, mask: &[bool]) -> u32 {
    if placement == FencePlacement::None || !mask.iter().any(|&m| m) {
        return 0;
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Load,
        Store,
        Other,
    }
    let mut drop = vec![false; block.ops.len()];
    let mut event = 0usize;
    let mut removed = 0u32;
    for i in 0..block.ops.len() {
        let kind = match block.ops[i] {
            TcgOp::Ld { .. } | TcgOp::Ld8 { .. } => Kind::Load,
            TcgOp::St { .. } | TcgOp::St8 { .. } => Kind::Store,
            TcgOp::Cas { .. } | TcgOp::AtomicAdd { .. } | TcgOp::CallHelper { .. } => Kind::Other,
            _ => continue,
        };
        let masked = mask.get(event).copied().unwrap_or(false);
        event += 1;
        if !masked || kind == Kind::Other {
            continue;
        }
        // The frontend emits each access's scheme fence directly adjacent
        // to it; anything else (already-optimized IR, a hand-built block)
        // conservatively relaxes nothing for this event.
        let expected: Option<(usize, FenceKind)> = match (placement, kind) {
            (FencePlacement::VerifiedTrailing, Kind::Load) => Some((i + 1, FenceKind::Frm)),
            (FencePlacement::VerifiedTrailing, Kind::Store) if i > 0 => {
                Some((i - 1, FenceKind::Fww))
            }
            (FencePlacement::QemuLeading, Kind::Load) if i > 0 => Some((i - 1, FenceKind::Frr)),
            (FencePlacement::QemuLeading, Kind::Store) if i > 0 => Some((i - 1, FenceKind::Fmw)),
            _ => None,
        };
        if let Some((j, want)) = expected {
            if matches!(block.ops.get(j), Some(TcgOp::Fence(k)) if *k == want) && !drop[j] {
                drop[j] = true;
                removed += 1;
            }
        }
    }
    if removed > 0 {
        let mut i = 0;
        block.ops.retain(|_| {
            let keep = !drop[i];
            i += 1;
            keep
        });
    }
    removed
}

/// [`check_obligations`] against an analysis-relaxed reference: the
/// obligations of events set in `mask` are recomputed as relaxed (their
/// scheme fence removed via [`relax_block`] on a copy of `reference`)
/// before the four-part proof runs. The caller must derive `mask` from
/// the *pristine* analysis facts — never from the mask the translation
/// pipeline actually applied — so a pipeline that relaxed an event the
/// facts do not certify fails part 3/4 here with a structured
/// [`VerifyError`].
pub fn check_obligations_masked(
    reference: &TcgBlock,
    optimized: &TcgBlock,
    placement: FencePlacement,
    policy: OptPolicy,
    mask: &[bool],
) -> Result<(), VerifyError> {
    if mask.iter().any(|&m| m) {
        let mut relaxed = reference.clone();
        relax_block(&mut relaxed, placement, mask);
        obligations_impl(&relaxed, optimized, placement, policy, mask)
    } else {
        obligations_impl(reference, optimized, placement, policy, &[])
    }
}

fn obligations_impl(
    reference: &TcgBlock,
    optimized: &TcgBlock,
    placement: FencePlacement,
    policy: OptPolicy,
    mask: &[bool],
) -> Result<(), VerifyError> {
    let err = |op_index: Option<usize>, obligation: String| VerifyError {
        pass: VerifyPass::FenceObligations,
        guest_pc: optimized.guest_pc,
        op_index,
        obligation,
    };
    if reference.guest_pc != optimized.guest_pc {
        return Err(err(
            None,
            format!(
                "reference block pc {:#x} does not match optimized pc {:#x}",
                reference.guest_pc, optimized.guest_pc
            ),
        ));
    }

    let (re, rg) = extract(reference);
    let (oe, og) = extract(optimized);

    // Scheme obligations hold for the frontend's (possibly analysis-
    // relaxed) output (part 4; the optimized block is checked after
    // event matching, when relaxed events can be mapped through).
    check_scheme(reference, &re, &rg, placement, mask)?;

    // Reference events by SSA result temp (the frontend allocates a
    // fresh temp per def, and superblock stitching renumbers, so defs
    // are unique).
    let mut def_map: HashMap<u32, usize> = HashMap::new();
    for (i, ev) in re.iter().enumerate() {
        if let Some(Temp(t)) = ev.def {
            if def_map.insert(t, i).is_some() {
                return Err(err(
                    Some(ev.op_index),
                    format!("reference defines t{t} at two memory events (not SSA)"),
                ));
            }
        }
    }

    // Part 1: match optimized events to reference events, walking
    // backwards so stores right-align within their segment.
    let mut partner = vec![usize::MAX; oe.len()];
    let mut unmatched: Vec<usize> = Vec::new();
    let mut r: isize = re.len() as isize - 1;
    for (o, ev) in oe.iter().enumerate().rev() {
        let p = if let Some(Temp(t)) = ev.def {
            let Some(&p) = def_map.get(&t) else {
                return Err(err(
                    Some(ev.op_index),
                    format!("{} defining t{t} has no reference counterpart", ev.shape.name()),
                ));
            };
            if p as isize > r {
                return Err(err(
                    Some(ev.op_index),
                    format!(
                        "{} defining t{t} was reordered across another access",
                        ev.shape.name()
                    ),
                ));
            }
            p
        } else {
            // A store: nearest same-shaped reference store at or before
            // the cursor.
            let mut p = r;
            loop {
                if p < 0 {
                    return Err(err(
                        Some(ev.op_index),
                        format!("{} has no reference counterpart", ev.shape.name()),
                    ));
                }
                if re[p as usize].shape == ev.shape {
                    break;
                }
                p -= 1;
            }
            p as usize
        };
        if re[p].shape != ev.shape {
            return Err(err(
                Some(ev.op_index),
                format!(
                    "access changed shape: reference op {} is a {}, optimized op {} a {}",
                    re[p].op_index,
                    re[p].shape.name(),
                    ev.op_index,
                    ev.shape.name()
                ),
            ));
        }
        for k in (p + 1)..=(r as usize) {
            unmatched.push(k);
        }
        partner[o] = p;
        r = p as isize - 1;
    }
    for k in 0..=r {
        unmatched.push(k as usize);
    }

    // Part 4 for the optimized block: scheme obligations per surviving
    // event, exempting events whose reference partner was relaxed.
    let relaxed_o: Vec<bool> =
        (0..oe.len()).map(|o| mask.get(partner[o]).copied().unwrap_or(false)).collect();
    check_scheme(optimized, &oe, &og, placement, &relaxed_o)?;

    // Part 2: every eliminated reference event must have been legally
    // eliminable.
    for &k in &unmatched {
        let ev = &re[k];
        match ev.shape {
            // Load forwarding / irrelevant-read elimination is always
            // sound in the TCG model (reads impose no ord out-edges).
            Shape::Ld | Shape::Ld8 => {}
            Shape::Cas | Shape::AtomicAdd | Shape::Helper(_) => {
                return Err(err(
                    Some(ev.op_index),
                    format!(
                        "{} eliminated from reference (atomics may never be dropped)",
                        ev.shape.name()
                    ),
                ));
            }
            Shape::St8 => {
                return Err(err(
                    Some(ev.op_index),
                    "byte store eliminated from reference (no WAW elimination for St8)".into(),
                ));
            }
            Shape::St => {
                // Find the overwriting store.
                let mut killer = None;
                for (j, later) in re.iter().enumerate().skip(k + 1) {
                    match later.shape {
                        Shape::St => {
                            killer = Some(j);
                            break;
                        }
                        Shape::Ld | Shape::Ld8 => continue,
                        _ => break,
                    }
                }
                let Some(j) = killer else {
                    return Err(err(
                        Some(ev.op_index),
                        "store eliminated with no overwriting store before the next atomic/helper or block end".into(),
                    ));
                };
                for gap in rg.iter().take(j + 1).skip(k + 1) {
                    if gap.side_exit {
                        return Err(err(
                            Some(ev.op_index),
                            "store eliminated across a superblock side exit".into(),
                        ));
                    }
                    for &f in &gap.fences {
                        if !waw_may_cross(f, policy) {
                            return Err(err(
                                Some(ev.op_index),
                                format!(
                                    "store eliminated across fence {} (WAW side condition violated)",
                                    fence_name(Some(f))
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Part 3: inter-access fence joins are preserved. Optimized gap i
    // spans the reference gaps between partner(i-1) and partner(i)
    // (block edges anchor the first and last segments).
    for i in 0..=oe.len() {
        let lo = if i == 0 { 0 } else { partner[i - 1] + 1 };
        let hi = if i == oe.len() { re.len() } else { partner[i] };
        let need = join_gaps(&rg, lo, hi);
        let have = og[i].join();
        if !at_least(have, need) {
            let op_index = oe.get(i).map(|e| e.op_index);
            return Err(err(
                op_index,
                format!(
                    "fence join weakened between surviving accesses: reference requires {}, optimized provides {}",
                    fence_name(need),
                    fence_name(have)
                ),
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::FrontendConfig;
    use crate::ir::Helper;
    use crate::opt::{optimize, PassConfig};
    use risotto_guest_x86::{Assembler, Gpr};

    fn fetcher(bytes: Vec<u8>, base: u64) -> impl Fn(u64) -> [u8; 16] {
        move |addr: u64| {
            let mut w = [0u8; 16];
            let off = (addr - base) as usize;
            for (i, b) in w.iter_mut().enumerate() {
                *b = bytes.get(off + i).copied().unwrap_or(0);
            }
            w
        }
    }

    fn sample_block(cfg: FrontendConfig) -> TcgBlock {
        let mut a = Assembler::new(0x1000);
        a.load(Gpr::RAX, Gpr::RDI, 0);
        a.store(Gpr::RSI, 0, Gpr::RAX);
        a.load(Gpr::RBX, Gpr::RDI, 8);
        a.store(Gpr::RSI, 8, Gpr::RBX);
        a.hlt();
        let (bytes, _) = a.finish().unwrap();
        crate::translate_block(0x1000, cfg, fetcher(bytes, 0x1000)).unwrap()
    }

    #[test]
    fn clean_pipeline_verifies() {
        for (cfg, policy) in [
            (FrontendConfig::risotto(), OptPolicy::Verified),
            (FrontendConfig::tcg_ver(), OptPolicy::Verified),
            (FrontendConfig::qemu(), OptPolicy::QemuUnsound),
            (FrontendConfig::no_fences(), OptPolicy::QemuUnsound),
        ] {
            let reference = sample_block(cfg);
            let mut opt = reference.clone();
            optimize(&mut opt, policy);
            lint(&opt, false).unwrap();
            check_obligations(&reference, &opt, cfg.fences, policy).unwrap();
        }
    }

    #[test]
    fn lint_rejects_undefined_temp_use() {
        let block = TcgBlock {
            guest_pc: 0x1000,
            guest_len: 1,
            ops: vec![TcgOp::Mov { dst: Temp(1), src: Temp(0) }],
            exit: TbExit::Halt,
            n_temps: 2,
        };
        let e = lint(&block, false).unwrap_err();
        assert_eq!(e.pass, VerifyPass::IrLint);
        assert_eq!(e.op_index, Some(0));
    }

    #[test]
    fn lint_rejects_marker_outside_superblock() {
        let block = TcgBlock {
            guest_pc: 0x1000,
            guest_len: 1,
            ops: vec![TcgOp::TbBoundary { pc: 0x1010 }],
            exit: TbExit::Halt,
            n_temps: 0,
        };
        assert!(lint(&block, false).is_err());
        assert!(lint(&block, true).is_ok());
    }

    #[test]
    fn lint_rejects_undefined_exit_flag() {
        let block = TcgBlock {
            guest_pc: 0x1000,
            guest_len: 1,
            ops: vec![],
            exit: TbExit::JumpReg(Temp(0)),
            n_temps: 1,
        };
        let e = lint(&block, false).unwrap_err();
        assert_eq!(e.op_index, None);
    }

    #[test]
    fn dropped_fence_is_flagged() {
        let cfg = FrontendConfig::risotto();
        let reference = sample_block(cfg);
        let mut opt = reference.clone();
        optimize(&mut opt, OptPolicy::Verified);
        let fence_at =
            opt.ops.iter().position(|o| matches!(o, TcgOp::Fence(_))).expect("has a fence");
        opt.ops.remove(fence_at);
        let e = check_obligations(&reference, &opt, cfg.fences, OptPolicy::Verified).unwrap_err();
        assert_eq!(e.pass, VerifyPass::FenceObligations);
    }

    #[test]
    fn downgraded_fence_is_flagged() {
        let cfg = FrontendConfig::risotto();
        let reference = sample_block(cfg);
        let mut opt = reference.clone();
        optimize(&mut opt, OptPolicy::Verified);
        let fence_at =
            opt.ops.iter().position(|o| matches!(o, TcgOp::Fence(_))).expect("has a fence");
        opt.ops[fence_at] = TcgOp::Fence(FenceKind::Facq);
        assert!(check_obligations(&reference, &opt, cfg.fences, OptPolicy::Verified).is_err());
    }

    #[test]
    fn reordered_fence_is_flagged() {
        let cfg = FrontendConfig::risotto();
        let reference = sample_block(cfg);
        let mut opt = reference.clone();
        optimize(&mut opt, OptPolicy::Verified);
        // Swap a fence across an adjacent memory access.
        let pos = opt
            .ops
            .iter()
            .zip(opt.ops.iter().skip(1))
            .position(|(a, b)| {
                (matches!(a, TcgOp::Fence(_)) && b.is_memory_access())
                    || (a.is_memory_access() && matches!(b, TcgOp::Fence(_)))
            })
            .expect("fence adjacent to an access");
        opt.ops.swap(pos, pos + 1);
        assert!(check_obligations(&reference, &opt, cfg.fences, OptPolicy::Verified).is_err());
    }

    #[test]
    fn unsound_store_elimination_is_flagged() {
        // `Fww; St; Fww; St` with the first store dropped: the WAW side
        // condition forbids crossing Fww (the PR-2 bug class).
        let cfg = FrontendConfig::risotto();
        let reference = sample_block(cfg);
        let mut opt = reference.clone();
        optimize(&mut opt, OptPolicy::Verified);
        let st_at =
            opt.ops.iter().position(|o| matches!(o, TcgOp::St { .. })).expect("has a store");
        opt.ops.remove(st_at);
        let e = check_obligations(&reference, &opt, cfg.fences, OptPolicy::Verified).unwrap_err();
        assert!(e.obligation.contains("store eliminated"), "{e}");
    }

    #[test]
    fn eliminated_atomic_is_flagged() {
        let reference = TcgBlock {
            guest_pc: 0x1000,
            guest_len: 1,
            ops: vec![
                TcgOp::MovI { dst: Temp(0), val: 0 },
                TcgOp::CallHelper {
                    helper: Helper::CmpxchgSc,
                    args: vec![Temp(0)],
                    ret: Some(Temp(1)),
                },
            ],
            exit: TbExit::Halt,
            n_temps: 2,
        };
        let mut opt = reference.clone();
        opt.ops.pop();
        let e = check_obligations(&reference, &opt, FencePlacement::None, OptPolicy::Verified)
            .unwrap_err();
        assert!(e.obligation.contains("atomics"), "{e}");
    }

    #[test]
    fn relaxed_block_verifies_only_under_matching_mask() {
        let cfg = FrontendConfig::risotto();
        let reference = sample_block(cfg);
        // Events: Ld, St, Ld, St. Relax the first load.
        let mask = [true, false, false, false];
        let mut opt = reference.clone();
        let removed = relax_block(&mut opt, cfg.fences, &mask);
        assert_eq!(removed, 1, "one Frm dropped");
        optimize(&mut opt, OptPolicy::Verified);
        // The unmasked checker must reject the missing Frm…
        let e = check_obligations(&reference, &opt, cfg.fences, OptPolicy::Verified).unwrap_err();
        assert_eq!(e.pass, VerifyPass::FenceObligations);
        // …while the masked checker re-derives the relaxation and accepts.
        check_obligations_masked(&reference, &opt, cfg.fences, OptPolicy::Verified, &mask).unwrap();
    }

    #[test]
    fn over_relaxation_is_flagged() {
        let cfg = FrontendConfig::risotto();
        let reference = sample_block(cfg);
        // The pipeline relaxed the first store, but the (pristine) facts
        // only certify the first load: Pass 2 must reject.
        let mut opt = reference.clone();
        relax_block(&mut opt, cfg.fences, &[false, true, false, false]);
        optimize(&mut opt, OptPolicy::Verified);
        let e = check_obligations_masked(
            &reference,
            &opt,
            cfg.fences,
            OptPolicy::Verified,
            &[true, false, false, false],
        )
        .unwrap_err();
        assert_eq!(e.pass, VerifyPass::FenceObligations);
    }

    #[test]
    fn relax_ignores_atomic_events() {
        // Cas carries its ordering in the op; masking it must remove
        // nothing.
        let mut a = Assembler::new(0x1000);
        a.cmpxchg(Gpr::RSI, 0, Gpr::RAX);
        a.hlt();
        let (bytes, _) = a.finish().unwrap();
        let cfg = FrontendConfig::risotto();
        let mut block = crate::translate_block(0x1000, cfg, fetcher(bytes, 0x1000)).unwrap();
        assert_eq!(relax_block(&mut block, cfg.fences, &[true]), 0);
    }

    #[test]
    fn pass_ablation_still_verifies() {
        let cfg = FrontendConfig::risotto();
        for passes in [
            PassConfig::none(),
            PassConfig::all_except("merge_fences"),
            PassConfig::all_except("forward_memory"),
            PassConfig::all_except("constant_fold"),
            PassConfig::all_except("dce"),
        ] {
            let reference = sample_block(cfg);
            let mut opt = reference.clone();
            crate::optimize_with(&mut opt, OptPolicy::Verified, passes);
            check_obligations(&reference, &opt, cfg.fences, OptPolicy::Verified).unwrap();
        }
    }
}
