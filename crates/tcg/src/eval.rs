//! A direct evaluator for TCG blocks.
//!
//! Used by the test-suite (and the optimizer's differential tests) to run
//! a block against an env + memory without involving the host backend:
//! `translate → eval` must agree with the guest reference interpreter,
//! and `optimize` must preserve `eval`'s results.

use crate::ir::{env, Helper, TbExit, TcgBlock, TcgOp};
use risotto_guest_x86::{softfloat, SparseMem};

/// The resolved outcome of evaluating one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalExit {
    /// Continue at this guest pc.
    Jump(u64),
    /// Guest halted.
    Halt,
    /// Guest syscall; resume at the pc after servicing.
    Syscall {
        /// Resume pc.
        next: u64,
    },
}

/// Evaluates `block` against guest state and memory.
///
/// # Panics
///
/// Panics on use of an undefined temp (indicates an optimizer bug) —
/// temps are zero-initialized only for robustness in release builds.
pub fn eval_block(block: &TcgBlock, envr: &mut [u64; env::COUNT], mem: &mut SparseMem) -> EvalExit {
    let mut temps = vec![0u64; block.n_temps as usize];
    for op in &block.ops {
        match op {
            TcgOp::MovI { dst, val } => temps[dst.0 as usize] = *val,
            TcgOp::Mov { dst, src } => temps[dst.0 as usize] = temps[src.0 as usize],
            TcgOp::GetReg { dst, reg } => temps[dst.0 as usize] = envr[*reg as usize],
            TcgOp::SetReg { reg, src } => envr[*reg as usize] = temps[src.0 as usize],
            TcgOp::Ld { dst, addr } => {
                temps[dst.0 as usize] = mem.read_u64(temps[addr.0 as usize]);
            }
            TcgOp::St { addr, src } => {
                mem.write_u64(temps[addr.0 as usize], temps[src.0 as usize]);
            }
            TcgOp::Ld8 { dst, addr } => {
                temps[dst.0 as usize] = mem.read_u8(temps[addr.0 as usize]) as u64;
            }
            TcgOp::St8 { addr, src } => {
                mem.write_u8(temps[addr.0 as usize], temps[src.0 as usize] as u8);
            }
            TcgOp::Bin { op, dst, a, b } => {
                temps[dst.0 as usize] = op.apply(temps[a.0 as usize], temps[b.0 as usize]);
            }
            TcgOp::Setcond { cond, dst, a, b } => {
                temps[dst.0 as usize] = cond.apply(temps[a.0 as usize], temps[b.0 as usize]);
            }
            TcgOp::Fence(_) => {}
            TcgOp::Cas { dst, addr, expect, new } => {
                let a = temps[addr.0 as usize];
                let old = mem.read_u64(a);
                if old == temps[expect.0 as usize] {
                    mem.write_u64(a, temps[new.0 as usize]);
                }
                temps[dst.0 as usize] = old;
            }
            TcgOp::AtomicAdd { dst, addr, val } => {
                let a = temps[addr.0 as usize];
                let old = mem.read_u64(a);
                mem.write_u64(a, old.wrapping_add(temps[val.0 as usize]));
                temps[dst.0 as usize] = old;
            }
            TcgOp::CallHelper { helper, args, ret } => {
                let arg = |i: usize| temps[args[i].0 as usize];
                let result = match helper {
                    Helper::CmpxchgSc => {
                        let a = arg(0);
                        let old = mem.read_u64(a);
                        if old == arg(1) {
                            mem.write_u64(a, arg(2));
                        }
                        old
                    }
                    Helper::XaddSc => {
                        let a = arg(0);
                        let old = mem.read_u64(a);
                        mem.write_u64(a, old.wrapping_add(arg(1)));
                        old
                    }
                    // Shared deterministic f64 semantics — must match
                    // the interpreter and both host FP paths exactly.
                    Helper::FpAdd => softfloat::add(arg(0), arg(1)),
                    Helper::FpSub => softfloat::sub(arg(0), arg(1)),
                    Helper::FpMul => softfloat::mul(arg(0), arg(1)),
                    Helper::FpDiv => softfloat::div(arg(0), arg(1)),
                    Helper::FpSqrt => softfloat::sqrt(arg(1)),
                    Helper::FpCvtIF => softfloat::cvt_if(arg(1)),
                    Helper::FpCvtFI => softfloat::cvt_fi(arg(1)),
                };
                if let Some(r) = ret {
                    temps[r.0 as usize] = result;
                }
            }
            TcgOp::SideExit { flag, stay_if, target } => {
                if (temps[flag.0 as usize] != 0) != *stay_if {
                    return EvalExit::Jump(*target);
                }
            }
            TcgOp::TbBoundary { .. } => {}
        }
    }
    match &block.exit {
        TbExit::Jump(t) => EvalExit::Jump(*t),
        TbExit::JumpReg(t) => EvalExit::Jump(temps[t.0 as usize]),
        TbExit::CondJump { flag, taken, fallthrough } => {
            if temps[flag.0 as usize] != 0 {
                EvalExit::Jump(*taken)
            } else {
                EvalExit::Jump(*fallthrough)
            }
        }
        TbExit::Halt => EvalExit::Halt,
        TbExit::Syscall { next } => EvalExit::Syscall { next: *next },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{translate_block, FrontendConfig};
    use risotto_guest_x86::{Assembler, Gpr};

    /// Translate + eval a straight-line snippet and compare the env with
    /// the reference interpreter.
    #[test]
    fn eval_matches_reference_interpreter() {
        use risotto_guest_x86::{AluOp, GelfBuilder};
        let mut b = GelfBuilder::new("main");
        let cell = b.data_u64(&[11]);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RDI, cell);
        b.asm.load(Gpr::RAX, Gpr::RDI, 0);
        b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 3);
        b.asm.store(Gpr::RDI, 8, Gpr::RAX);
        b.asm.alu_ri(AluOp::Sub, Gpr::RAX, 33);
        b.asm.hlt();
        let bin = b.finish().unwrap();

        // Reference run.
        let mut interp = risotto_guest_x86::Interp::new(&bin);
        interp.run(1000).unwrap();

        // TCG run (single block, since the code is straight-line + hlt).
        let mut mem = SparseMem::new();
        mem.load_binary(&bin);
        let text = bin.text.clone();
        let fetch = move |addr: u64| {
            let mut out = [0u8; 16];
            let off = (addr - risotto_guest_x86::TEXT_BASE) as usize;
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = text.get(off + i).copied().unwrap_or(0);
            }
            out
        };
        for cfg in [FrontendConfig::qemu(), FrontendConfig::risotto(), FrontendConfig::no_fences()]
        {
            let block = translate_block(bin.entry, cfg, &fetch).unwrap();
            let mut envr = [0u64; env::COUNT];
            let mut m = mem.clone();
            let exit = eval_block(&block, &mut envr, &mut m);
            assert_eq!(exit, EvalExit::Halt);
            assert_eq!(envr[Gpr::RAX.index()], interp.reg(0, Gpr::RAX));
            assert_eq!(m.read_u64(risotto_guest_x86::DATA_BASE + 8), 33);
            // ZF must reflect the final sub (33 - 33 == 0).
            assert_eq!(envr[env::ZF as usize], 1);
        }
    }

    #[test]
    fn condjump_resolution() {
        let mut a = Assembler::new(0x1000);
        a.cmp_ri(Gpr::RAX, 7);
        a.jcc_to(risotto_guest_x86::Cond::E, "yes");
        a.hlt();
        a.label("yes");
        a.nop();
        a.hlt();
        let (bytes, syms) = a.finish().unwrap();
        let fetch = move |addr: u64| {
            let mut out = [0u8; 16];
            let off = (addr - 0x1000) as usize;
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = bytes.get(off + i).copied().unwrap_or(0);
            }
            out
        };
        let block = translate_block(0x1000, FrontendConfig::risotto(), &fetch).unwrap();
        let mut mem = SparseMem::new();

        let mut envr = [0u64; env::COUNT];
        envr[Gpr::RAX.index()] = 7;
        assert_eq!(eval_block(&block, &mut envr, &mut mem), EvalExit::Jump(syms["yes"]));

        let mut envr = [0u64; env::COUNT];
        envr[Gpr::RAX.index()] = 8;
        match eval_block(&block, &mut envr, &mut mem) {
            EvalExit::Jump(t) => assert_ne!(t, syms["yes"]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
