//! # risotto-tcg
//!
//! The TCG-style intermediate representation, the MiniX86 frontend, and
//! the optimizer of the Risotto reproduction.
//!
//! The pipeline mirrors QEMU's (§2.3): guest basic blocks decode into
//! [`TcgBlock`]s of [`TcgOp`]s, fences are inserted per the selected
//! x86→TCG mapping scheme ([`FrontendConfig`]), the optimizer
//! ([`optimize`]) applies constant folding, the Fig. 10 memory-access
//! eliminations (with either the verified fence side conditions or QEMU's
//! unsound fence-oblivious ones), fence merging (§6.1) and DCE, and the
//! host backend (in `risotto-host-arm`) lowers the result per the TCG→Arm
//! scheme.
//!
//! ## Example
//!
//! ```
//! use risotto_guest_x86::{Assembler, Gpr};
//! use risotto_tcg::{optimize, translate_block, FrontendConfig, OptPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new(0x1000);
//! a.load(Gpr::RAX, Gpr::RDI, 0);
//! a.store(Gpr::RSI, 0, Gpr::RAX);
//! a.hlt();
//! let (bytes, _) = a.finish()?;
//! let fetch = |addr: u64| {
//!     let mut w = [0u8; 16];
//!     let off = (addr - 0x1000) as usize;
//!     for i in 0..16 { w[i] = bytes.get(off + i).copied().unwrap_or(0); }
//!     w
//! };
//! let mut block = translate_block(0x1000, FrontendConfig::risotto(), fetch)?;
//! let stats = optimize(&mut block, OptPolicy::Verified);
//! assert!(stats.fences_merged > 0); // the §6.1 Frm·Fww merge
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod eval;
mod frontend;
mod ir;
mod opt;
pub mod superblock;
pub mod verify;

pub use eval::{eval_block, EvalExit};
pub use frontend::{
    translate_block, CasStrategy, FencePlacement, FrontendConfig, TranslateError, MAX_TB_INSNS,
};
pub use ir::{env, BinOp, CondOp, Helper, TbExit, TcgBlock, TcgOp, Temp};
pub use opt::{
    apply_hints, constant_fold, dce, elim_may_cross, merge_fences, merge_fences_counted,
    merge_fences_region, optimize, optimize_with, ElimKind, HintStats, IrHints, OptPolicy,
    OptStats, PassConfig,
};
pub use verify::{VerifyError, VerifyPass};
