//! The TCG-style intermediate representation.
//!
//! Guest basic blocks are translated into [`TcgBlock`]s: straight-line
//! sequences of [`TcgOp`]s over virtual temporaries, ending in a
//! [`TbExit`]. Guest CPU state (16 GPRs + 4 flags) lives in an "env" that
//! `GetReg`/`SetReg` access; shared memory is reached through `Ld`/`St`,
//! the `Cas`/`AtomicAdd` RMW ops (Risotto's §6.3 fast path), helper calls
//! (QEMU's RMW/soft-float path) and the nine-fence TCG barrier alphabet of
//! the paper's Fig. 6.

use risotto_memmodel::FenceKind;
use std::fmt;

/// A virtual temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Temp(pub u32);

/// Guest-state register indices (the "env").
pub mod env {
    /// First GPR index (RAX). GPR `i` is env register `i`.
    pub const GPR0: u8 = 0;
    /// Zero flag.
    pub const ZF: u8 = 16;
    /// Sign flag.
    pub const SF: u8 = 17;
    /// Carry flag.
    pub const CF: u8 = 18;
    /// Overflow flag.
    pub const OF: u8 = 19;
    /// Number of env registers.
    pub const COUNT: usize = 20;
}

/// Binary operations on temps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (count masked).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Wrapping multiplication.
    Mul,
    /// High 64 bits of the unsigned 128-bit product.
    MulHi,
    /// Unsigned division (x ÷ 0 = 0).
    Divu,
    /// Unsigned remainder (x mod 0 = x).
    Remu,
}

impl BinOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::MulHi => ((a as u128 * b as u128) >> 64) as u64,
            BinOp::Divu => a.checked_div(b).unwrap_or(0),
            BinOp::Remu => a.checked_rem(b).unwrap_or(a),
        }
    }
}

/// Comparison conditions for `Setcond`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Signed less-than.
    LtS,
}

impl CondOp {
    /// Evaluates to 1 or 0.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let r = match self {
            CondOp::Eq => a == b,
            CondOp::Ne => a != b,
            CondOp::LtU => a < b,
            CondOp::LtS => (a as i64) < (b as i64),
        };
        r as u64
    }
}

/// Runtime helper functions (QEMU-style out-of-line code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Helper {
    /// Sequentially consistent compare-and-swap; returns the old value.
    /// args: `[addr, expected, new]`.
    CmpxchgSc,
    /// Sequentially consistent fetch-and-add; returns the old value.
    /// args: `[addr, addend]`.
    XaddSc,
    /// Soft-float f64 binary op; args `[a, b]`, bit patterns.
    FpAdd,
    /// Soft-float subtraction.
    FpSub,
    /// Soft-float multiplication.
    FpMul,
    /// Soft-float division.
    FpDiv,
    /// Soft-float square root of `args[1]`.
    FpSqrt,
    /// Int → f64 conversion of `args[1]`.
    FpCvtIF,
    /// f64 → int conversion of `args[1]`.
    FpCvtFI,
}

impl Helper {
    /// `true` for the soft-float helpers.
    pub fn is_float(self) -> bool {
        !matches!(self, Helper::CmpxchgSc | Helper::XaddSc)
    }

    /// `true` for the atomic (RMW) helpers.
    pub fn is_atomic(self) -> bool {
        matches!(self, Helper::CmpxchgSc | Helper::XaddSc)
    }
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcgOp {
    /// `dst = imm`.
    MovI {
        /// Destination temp.
        dst: Temp,
        /// Immediate value.
        val: u64,
    },
    /// `dst = src`.
    Mov {
        /// Destination temp.
        dst: Temp,
        /// Source temp.
        src: Temp,
    },
    /// `dst = env[reg]`.
    GetReg {
        /// Destination temp.
        dst: Temp,
        /// Env register index.
        reg: u8,
    },
    /// `env[reg] = src`.
    SetReg {
        /// Env register index.
        reg: u8,
        /// Source temp.
        src: Temp,
    },
    /// `dst = *addr` (shared memory, 64-bit).
    Ld {
        /// Destination temp.
        dst: Temp,
        /// Address temp.
        addr: Temp,
    },
    /// `*addr = src`.
    St {
        /// Address temp.
        addr: Temp,
        /// Source temp.
        src: Temp,
    },
    /// `dst = zero_extend(*(u8*)addr)`.
    Ld8 {
        /// Destination temp.
        dst: Temp,
        /// Address temp.
        addr: Temp,
    },
    /// `*(u8*)addr = low8(src)`.
    St8 {
        /// Address temp.
        addr: Temp,
        /// Source temp.
        src: Temp,
    },
    /// `dst = a op b`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: Temp,
        /// Left operand.
        a: Temp,
        /// Right operand.
        b: Temp,
    },
    /// `dst = (a cond b) ? 1 : 0`.
    Setcond {
        /// Condition.
        cond: CondOp,
        /// Destination.
        dst: Temp,
        /// Left operand.
        a: Temp,
        /// Right operand.
        b: Temp,
    },
    /// A TCG memory fence (must satisfy [`FenceKind::is_tcg`]).
    Fence(FenceKind),
    /// Risotto's direct CAS op (§6.3): `dst = *addr; if dst == expect
    /// { *addr = new }`, SC semantics.
    Cas {
        /// Receives the old value.
        dst: Temp,
        /// Address.
        addr: Temp,
        /// Expected value.
        expect: Temp,
        /// Replacement value.
        new: Temp,
    },
    /// Atomic fetch-and-add with SC semantics: `dst = *addr; *addr += val`.
    AtomicAdd {
        /// Receives the old value.
        dst: Temp,
        /// Address.
        addr: Temp,
        /// Addend.
        val: Temp,
    },
    /// Out-of-line helper call (QEMU path for RMWs and soft-float).
    CallHelper {
        /// Which helper.
        helper: Helper,
        /// Arguments.
        args: Vec<Temp>,
        /// Optional result.
        ret: Option<Temp>,
    },
    /// Superblock guard: leave the trace at `target` unless `flag`'s
    /// truth matches the profiled direction. Only the superblock
    /// stitcher emits this (from a constituent block's `CondJump`); it
    /// never appears in tier-1 blocks. The optimizer treats it as a
    /// partial barrier: env state and earlier stores must be
    /// architecturally complete here (the off-trace continuation
    /// observes them), but fences may still merge across it
    /// (strengthening the exit path is sound).
    SideExit {
        /// Condition temp (0 or 1) from the original `CondJump`.
        flag: Temp,
        /// Execution stays on the trace when `(flag != 0) == stay_if`.
        stay_if: bool,
        /// Guest pc of the off-trace continuation.
        target: u64,
    },
    /// Seam left where two translation blocks were stitched into a
    /// superblock. Generates no host code; kept so cross-boundary
    /// optimizations are attributable (and countable) in stats.
    TbBoundary {
        /// Guest pc of the block that starts here.
        pc: u64,
    },
}

impl TcgOp {
    /// The temp this op defines, if any.
    pub fn def(&self) -> Option<Temp> {
        match self {
            TcgOp::MovI { dst, .. }
            | TcgOp::Mov { dst, .. }
            | TcgOp::GetReg { dst, .. }
            | TcgOp::Ld { dst, .. }
            | TcgOp::Ld8 { dst, .. }
            | TcgOp::Bin { dst, .. }
            | TcgOp::Setcond { dst, .. }
            | TcgOp::Cas { dst, .. }
            | TcgOp::AtomicAdd { dst, .. } => Some(*dst),
            TcgOp::CallHelper { ret, .. } => *ret,
            TcgOp::SetReg { .. }
            | TcgOp::St { .. }
            | TcgOp::St8 { .. }
            | TcgOp::Fence(_)
            | TcgOp::SideExit { .. }
            | TcgOp::TbBoundary { .. } => None,
        }
    }

    /// The temps this op reads.
    pub fn uses(&self) -> Vec<Temp> {
        match self {
            TcgOp::MovI { .. } | TcgOp::GetReg { .. } | TcgOp::Fence(_) => vec![],
            TcgOp::TbBoundary { .. } => vec![],
            TcgOp::SideExit { flag, .. } => vec![*flag],
            TcgOp::Mov { src, .. } | TcgOp::SetReg { src, .. } => vec![*src],
            TcgOp::Ld { addr, .. } | TcgOp::Ld8 { addr, .. } => vec![*addr],
            TcgOp::St { addr, src } | TcgOp::St8 { addr, src } => vec![*addr, *src],
            TcgOp::Bin { a, b, .. } | TcgOp::Setcond { a, b, .. } => vec![*a, *b],
            TcgOp::Cas { addr, expect, new, .. } => vec![*addr, *expect, *new],
            TcgOp::AtomicAdd { addr, val, .. } => vec![*addr, *val],
            TcgOp::CallHelper { args, .. } => args.clone(),
        }
    }

    /// `true` if the op touches shared memory or guest state, calls out,
    /// or is a fence — i.e. must not be dead-code-eliminated even if its
    /// result is unused. (Plain `Ld`s *are* removable: irrelevant-read
    /// elimination is sound in the TCG model.)
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            TcgOp::SetReg { .. }
                | TcgOp::St { .. }
                | TcgOp::St8 { .. }
                | TcgOp::Fence(_)
                | TcgOp::Cas { .. }
                | TcgOp::AtomicAdd { .. }
                | TcgOp::CallHelper { .. }
                | TcgOp::SideExit { .. }
                | TcgOp::TbBoundary { .. }
        )
    }

    /// `true` for shared-memory access ops (used by the fence merger:
    /// fences may only merge when no access sits between them).
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            TcgOp::Ld { .. }
                | TcgOp::St { .. }
                | TcgOp::Ld8 { .. }
                | TcgOp::St8 { .. }
                | TcgOp::Cas { .. }
                | TcgOp::AtomicAdd { .. }
                | TcgOp::CallHelper { .. }
        )
    }
}

/// How a translation block ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TbExit {
    /// Fall through / jump to a known guest pc.
    Jump(u64),
    /// Indirect jump to the address in a temp.
    JumpReg(Temp),
    /// Conditional: if `flag != 0` go to `taken`, else `fallthrough`.
    CondJump {
        /// Condition temp (0 or 1).
        flag: Temp,
        /// Target when non-zero.
        taken: u64,
        /// Target when zero.
        fallthrough: u64,
    },
    /// Guest executed `HLT`.
    Halt,
    /// Guest executed `SYSCALL`; the engine services it and resumes at the
    /// given pc.
    Syscall {
        /// Resume pc.
        next: u64,
    },
}

/// A translated basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcgBlock {
    /// Guest pc of the first instruction.
    pub guest_pc: u64,
    /// Number of guest bytes consumed.
    pub guest_len: usize,
    /// The operations.
    pub ops: Vec<TcgOp>,
    /// Block exit.
    pub exit: TbExit,
    /// Number of temps allocated (`Temp(0)..Temp(n_temps)`).
    pub n_temps: u32,
}

impl TcgBlock {
    /// Allocates a fresh temp.
    pub fn new_temp(&mut self) -> Temp {
        let t = Temp(self.n_temps);
        self.n_temps += 1;
        t
    }

    /// Counts ops matching a predicate (handy in tests and stats).
    pub fn count_ops<F: Fn(&TcgOp) -> bool>(&self, pred: F) -> usize {
        self.ops.iter().filter(|o| pred(o)).count()
    }

    /// Counts fence ops of a given kind.
    pub fn count_fences(&self, kind: FenceKind) -> usize {
        self.count_ops(|o| matches!(o, TcgOp::Fence(k) if *k == kind))
    }
}

impl fmt::Display for TcgBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TB @ {:#x} ({} guest bytes):", self.guest_pc, self.guest_len)?;
        for op in &self.ops {
            writeln!(f, "  {op:?}")?;
        }
        writeln!(f, "  exit: {:?}", self.exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_classification() {
        let op = TcgOp::Bin { op: BinOp::Add, dst: Temp(2), a: Temp(0), b: Temp(1) };
        assert_eq!(op.def(), Some(Temp(2)));
        assert_eq!(op.uses(), vec![Temp(0), Temp(1)]);
        assert!(!op.has_side_effect());
        let st = TcgOp::St { addr: Temp(0), src: Temp(1) };
        assert!(st.has_side_effect());
        assert!(st.is_memory_access());
        assert_eq!(st.def(), None);
        let ld = TcgOp::Ld { dst: Temp(3), addr: Temp(0) };
        assert!(!ld.has_side_effect(), "irrelevant loads are removable");
        assert!(ld.is_memory_access());
    }

    #[test]
    fn superblock_marker_classification() {
        let se = TcgOp::SideExit { flag: Temp(4), stay_if: true, target: 0x2000 };
        assert_eq!(se.def(), None);
        assert_eq!(se.uses(), vec![Temp(4)], "guard flag must stay live");
        assert!(se.has_side_effect(), "side exits are never DCE'd");
        assert!(!se.is_memory_access(), "fences may merge across a side exit");
        let tb = TcgOp::TbBoundary { pc: 0x2000 };
        assert_eq!(tb.def(), None);
        assert!(tb.uses().is_empty());
        assert!(tb.has_side_effect());
        assert!(!tb.is_memory_access(), "seams don't block fence merging");
    }

    #[test]
    fn binop_semantics_match_guest() {
        assert_eq!(BinOp::Divu.apply(10, 0), 0);
        assert_eq!(BinOp::Remu.apply(10, 0), 10);
        assert_eq!(BinOp::Sar.apply(u64::MAX, 1), u64::MAX);
        assert_eq!(BinOp::Shl.apply(1, 64), 1, "masked count");
        assert_eq!(CondOp::LtS.apply(u64::MAX, 0), 1);
        assert_eq!(CondOp::LtU.apply(u64::MAX, 0), 0);
    }

    #[test]
    fn temp_allocation() {
        let mut b =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        assert_eq!(b.new_temp(), Temp(0));
        assert_eq!(b.new_temp(), Temp(1));
        assert_eq!(b.n_temps, 2);
    }
}
