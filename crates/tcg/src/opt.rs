//! The TCG optimizer.
//!
//! Passes (§2.3, §5.4, §6.1):
//!
//! * constant propagation & folding (incl. the false-dependency
//!   simplifications `x*0 ↝ 0`, `x⊕x ↝ 0` of §6.1),
//! * copy propagation,
//! * memory-access eliminations — RAR / RAW / WAW forwarding with the
//!   Fig. 10 fence side conditions ([`OptPolicy::Verified`]) or QEMU's
//!   historical fence-oblivious behavior ([`OptPolicy::QemuUnsound`],
//!   which the FMR example shows incorrect),
//! * fence merging: adjacent fences with no intervening memory access
//!   merge into their join, placed at the earliest position,
//! * dead code elimination (temp liveness + redundant `SetReg` removal —
//!   this is what kills the eagerly-computed flag updates that a later
//!   `CMP` overwrites).
//!
//! Blocks are in SSA form (the frontend allocates a fresh temp per def);
//! every pass preserves that invariant.

use crate::ir::{TbExit, TcgBlock, TcgOp, Temp};
use risotto_memmodel::FenceKind;
use std::collections::HashMap;

/// Which elimination side conditions the memory-forwarding pass uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptPolicy {
    /// Fig. 10: RAW may cross `Fsc`/`Fww`, RAR may cross `Frm`/`Fww`, and
    /// WAW (which deletes a *write*) only fences with a read-only
    /// predecessor class — `Frr`/`Frw`/`Frm`. See [`elim_may_cross`].
    Verified,
    /// QEMU's fence-oblivious eliminations (unsound across `Fmr`, §3.2).
    QemuUnsound,
}

/// Statistics from one optimization run (exposed for tests and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Constants folded.
    pub folded: usize,
    /// Loads forwarded (RAW + RAR).
    pub loads_forwarded: usize,
    /// Dead stores removed (WAW).
    pub stores_eliminated: usize,
    /// Fences merged away.
    pub fences_merged: usize,
    /// Fences merged away, by the kind of the removed fence; indexed by
    /// [`FenceKind::tcg_index`] over [`FenceKind::TCG_ALL`]. The entries
    /// sum to `fences_merged`.
    pub fences_merged_by_kind: [usize; 12],
    /// The subset of `fences_merged` whose merge crossed a former TB
    /// boundary (a [`TcgOp::TbBoundary`] or [`TcgOp::SideExit`] marker
    /// sat between the two fences). Always zero for tier-1 blocks,
    /// which contain no markers.
    pub fences_merged_cross: usize,
    /// Ops removed by DCE.
    pub dce_removed: usize,
}

impl std::ops::AddAssign for OptStats {
    fn add_assign(&mut self, rhs: OptStats) {
        self.folded += rhs.folded;
        self.loads_forwarded += rhs.loads_forwarded;
        self.stores_eliminated += rhs.stores_eliminated;
        self.fences_merged += rhs.fences_merged;
        for (a, b) in self.fences_merged_by_kind.iter_mut().zip(rhs.fences_merged_by_kind) {
            *a += b;
        }
        self.fences_merged_cross += rhs.fences_merged_cross;
        self.dce_removed += rhs.dce_removed;
    }
}

/// Which passes run — the ablation knob for the `ablation_passes` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Constant folding + copy propagation (+ false-dependency elim).
    pub constant_fold: bool,
    /// RAR/RAW/WAW memory forwarding.
    pub forward_memory: bool,
    /// Fence merging (§6.1).
    pub merge_fences: bool,
    /// Dead code elimination.
    pub dce: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig { constant_fold: true, forward_memory: true, merge_fences: true, dce: true }
    }
}

impl PassConfig {
    /// Everything on (the production pipeline).
    pub fn all() -> PassConfig {
        PassConfig::default()
    }

    /// Everything off (raw frontend output).
    pub fn none() -> PassConfig {
        PassConfig { constant_fold: false, forward_memory: false, merge_fences: false, dce: false }
    }

    /// All passes except one, by name (for ablations).
    ///
    /// # Panics
    ///
    /// Panics on an unknown pass name.
    pub fn all_except(pass: &str) -> PassConfig {
        let mut c = PassConfig::all();
        match pass {
            "constant_fold" => c.constant_fold = false,
            "forward_memory" => c.forward_memory = false,
            "merge_fences" => c.merge_fences = false,
            "dce" => c.dce = false,
            other => panic!("unknown pass `{other}`"),
        }
        c
    }
}

/// Facts an IR-level value-range analysis proved about a block, to be
/// applied by [`apply_hints`] before the regular pass pipeline runs.
/// Produced by `risotto-analysis::ir_hints` (known-bits over the
/// straight-line IR); defined here so the optimizer does not depend on
/// the analysis crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrHints {
    /// Temps proven to hold a single possible value, with that value.
    /// Only temps defined by a *pure* op (`Mov`/`Bin`/`Setcond`) may be
    /// listed — replacing the def of a memory access or helper would
    /// change the event sequence.
    pub const_temps: Vec<(Temp, u64)>,
    /// The exit's `CondJump` flag is proven always non-zero (`Some(true)`)
    /// or always zero (`Some(false)`) — the dead branch can be pruned.
    pub exit_flag: Option<bool>,
}

/// Statistics from one [`apply_hints`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HintStats {
    /// Pure ops replaced by `MovI` constants.
    pub folded: u32,
    /// Conditional exits rewritten to unconditional jumps.
    pub branches_pruned: u32,
}

/// Applies analysis-derived [`IrHints`] to a block in place: each listed
/// pure op is replaced with a `MovI` of its proven value, and a decided
/// `CondJump` exit becomes a `Jump` to the surviving target (dead-branch
/// pruning). Run before [`optimize`] so folding/DCE can exploit the new
/// constants. Memory events and fences are never touched, so verifier
/// Pass 2 is oblivious to hint application.
pub fn apply_hints(block: &mut TcgBlock, hints: &IrHints) -> HintStats {
    let mut stats = HintStats::default();
    for &(t, v) in &hints.const_temps {
        for op in block.ops.iter_mut() {
            let pure_def = match op {
                TcgOp::Mov { dst, .. } | TcgOp::Bin { dst, .. } | TcgOp::Setcond { dst, .. } => {
                    *dst == t
                }
                _ => false,
            };
            if pure_def {
                *op = TcgOp::MovI { dst: t, val: v };
                stats.folded += 1;
                break;
            }
        }
    }
    if let Some(flag) = hints.exit_flag {
        if let TbExit::CondJump { taken, fallthrough, .. } = block.exit {
            block.exit = TbExit::Jump(if flag { taken } else { fallthrough });
            stats.branches_pruned += 1;
        }
    }
    stats
}

/// Runs the full pass pipeline in place.
pub fn optimize(block: &mut TcgBlock, policy: OptPolicy) -> OptStats {
    optimize_with(block, policy, PassConfig::all())
}

/// Runs a configurable pass pipeline in place.
pub fn optimize_with(block: &mut TcgBlock, policy: OptPolicy, passes: PassConfig) -> OptStats {
    let mut stats = OptStats::default();
    if passes.constant_fold {
        stats.folded += constant_fold(block);
    }
    if passes.forward_memory {
        forward_memory(block, policy, &mut stats);
    }
    if passes.merge_fences {
        let mut cross = 0usize;
        stats.fences_merged +=
            merge_fences_region(block, &mut stats.fences_merged_by_kind, &mut cross);
        stats.fences_merged_cross += cross;
    }
    if passes.dce {
        stats.dce_removed += dce(block);
    }
    // A second fold round cleans up values exposed by forwarding.
    if passes.constant_fold {
        stats.folded += constant_fold(block);
    }
    if passes.dce {
        stats.dce_removed += dce(block);
    }
    stats
}

// ---------------------------------------------------------------------
// Constant folding + copy propagation.
// ---------------------------------------------------------------------

/// Folds constants and propagates copies; returns the number of ops
/// rewritten.
pub fn constant_fold(block: &mut TcgBlock) -> usize {
    use crate::ir::BinOp;
    let mut konst: HashMap<Temp, u64> = HashMap::new();
    let mut alias: HashMap<Temp, Temp> = HashMap::new();
    // Track which temp (if any) currently holds each env register's value,
    // so constants and copies propagate through SetReg/GetReg round-trips.
    let mut env_alias: [Option<Temp>; crate::ir::env::COUNT] = [None; crate::ir::env::COUNT];
    let mut changed = 0usize;

    let ops = std::mem::take(&mut block.ops);
    let mut out = Vec::with_capacity(ops.len());
    for mut op in ops {
        // Canonicalize uses through the alias map.
        rewrite_uses(&mut op, &alias);
        // Env-register forwarding: rewrite GetReg into a copy of the temp
        // last stored to that register.
        if let TcgOp::GetReg { dst, reg } = op {
            if let Some(src) = env_alias[reg as usize] {
                changed += 1;
                op = TcgOp::Mov { dst, src };
            }
        }
        if let TcgOp::SetReg { reg, src } = &op {
            env_alias[*reg as usize] = Some(resolve(&alias, *src));
        }
        match &op {
            TcgOp::MovI { dst, val } => {
                konst.insert(*dst, *val);
            }
            TcgOp::Mov { dst, src } => {
                if let Some(v) = konst.get(src).copied() {
                    konst.insert(*dst, v);
                    out.push(TcgOp::MovI { dst: *dst, val: v });
                    changed += 1;
                    continue;
                }
                alias.insert(*dst, resolve(&alias, *src));
                out.push(op);
                continue;
            }
            TcgOp::Bin { op: bop, dst, a, b } => {
                let ka = konst.get(a).copied();
                let kb = konst.get(b).copied();
                if let (Some(x), Some(y)) = (ka, kb) {
                    let v = bop.apply(x, y);
                    konst.insert(*dst, v);
                    out.push(TcgOp::MovI { dst: *dst, val: v });
                    changed += 1;
                    continue;
                }
                // Algebraic simplifications (false-dependency elimination,
                // §6.1): results that no longer depend on the variable
                // operand.
                let simplified: Option<TcgOp> = match bop {
                    BinOp::Mul if ka == Some(0) || kb == Some(0) => {
                        Some(TcgOp::MovI { dst: *dst, val: 0 })
                    }
                    BinOp::And if ka == Some(0) || kb == Some(0) => {
                        Some(TcgOp::MovI { dst: *dst, val: 0 })
                    }
                    BinOp::Xor | BinOp::Sub if a == b => Some(TcgOp::MovI { dst: *dst, val: 0 }),
                    BinOp::Add | BinOp::Or | BinOp::Xor if ka == Some(0) => {
                        Some(TcgOp::Mov { dst: *dst, src: *b })
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
                        if kb == Some(0) =>
                    {
                        Some(TcgOp::Mov { dst: *dst, src: *a })
                    }
                    BinOp::Mul if kb == Some(1) => Some(TcgOp::Mov { dst: *dst, src: *a }),
                    BinOp::Mul if ka == Some(1) => Some(TcgOp::Mov { dst: *dst, src: *b }),
                    _ => None,
                };
                if let Some(s) = simplified {
                    changed += 1;
                    match &s {
                        TcgOp::MovI { dst, val } => {
                            konst.insert(*dst, *val);
                        }
                        TcgOp::Mov { dst, src } => {
                            if let Some(v) = konst.get(src).copied() {
                                konst.insert(*dst, v);
                                out.push(TcgOp::MovI { dst: *dst, val: v });
                                continue;
                            }
                            alias.insert(*dst, resolve(&alias, *src));
                        }
                        _ => unreachable!(),
                    }
                    out.push(s);
                    continue;
                }
            }
            TcgOp::Setcond { cond, dst, a, b } => {
                if let (Some(x), Some(y)) = (konst.get(a).copied(), konst.get(b).copied()) {
                    let v = cond.apply(x, y);
                    konst.insert(*dst, v);
                    out.push(TcgOp::MovI { dst: *dst, val: v });
                    changed += 1;
                    continue;
                }
            }
            _ => {}
        }
        out.push(op);
    }
    block.ops = out;
    // Exit operands also go through the alias map.
    match &mut block.exit {
        TbExit::JumpReg(t) => *t = resolve(&alias, *t),
        TbExit::CondJump { flag, taken, fallthrough } => {
            let f = resolve(&alias, *flag);
            *flag = f;
            // A constant flag turns the conditional exit into a jump.
            if let Some(v) = konst.get(&f) {
                let target = if *v != 0 { *taken } else { *fallthrough };
                block.exit = TbExit::Jump(target);
                changed += 1;
            }
        }
        _ => {}
    }
    changed
}

fn resolve(alias: &HashMap<Temp, Temp>, t: Temp) -> Temp {
    let mut cur = t;
    while let Some(&next) = alias.get(&cur) {
        cur = next;
    }
    cur
}

fn rewrite_uses(op: &mut TcgOp, alias: &HashMap<Temp, Temp>) {
    let fix = |t: &mut Temp| *t = resolve(alias, *t);
    match op {
        TcgOp::Mov { src, .. } | TcgOp::SetReg { src, .. } => fix(src),
        TcgOp::Ld { addr, .. } | TcgOp::Ld8 { addr, .. } => fix(addr),
        TcgOp::St { addr, src } | TcgOp::St8 { addr, src } => {
            fix(addr);
            fix(src);
        }
        TcgOp::Bin { a, b, .. } | TcgOp::Setcond { a, b, .. } => {
            fix(a);
            fix(b);
        }
        TcgOp::Cas { addr, expect, new, .. } => {
            fix(addr);
            fix(expect);
            fix(new);
        }
        TcgOp::AtomicAdd { addr, val, .. } => {
            fix(addr);
            fix(val);
        }
        TcgOp::CallHelper { args, .. } => args.iter_mut().for_each(fix),
        TcgOp::SideExit { flag, .. } => fix(flag),
        TcgOp::MovI { .. } | TcgOp::GetReg { .. } | TcgOp::Fence(_) | TcgOp::TbBoundary { .. } => {}
    }
}

// ---------------------------------------------------------------------
// Memory-access eliminations (RAR / RAW / WAW).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrackedKind {
    Store { value: Temp },
    Load { value: Temp },
}

#[derive(Debug, Clone)]
struct Tracked {
    addr: Temp,
    kind: TrackedKind,
    /// Fences encountered since this access.
    fences_since: Vec<FenceKind>,
    /// A superblock side exit was crossed since this access. Forwarding
    /// a *read* past a side exit stays sound (the value was already
    /// architecturally committed when the exit is taken), but deleting a
    /// store that the off-trace continuation would observe is not, so
    /// WAW elimination refuses when this is set.
    escaped: bool,
}

/// Which Fig. 10 memory-access elimination is being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElimKind {
    /// Forward a store's value into a later load of the same address.
    Raw,
    /// Forward an earlier load's value into a later load.
    Rar,
    /// Delete an earlier store overwritten by a later one.
    Waw,
}

/// `true` when an elimination of `kind` may cross the fence `f` under the
/// verified policy (Fig. 10 side conditions).
///
/// RAW and RAR move a *read* of the location earlier (to the forwarded
/// def), so the fences they may cross are the ones whose ordering the
/// surviving access still provides: `Fsc`/`Fww` for RAW, `Frm`/`Fww` for
/// RAR. WAW deletes the *first write*: every `[W];po;[F];po;[post(F)]`
/// edge that write contributed disappears, and the surviving same-address
/// write (coherence-after it) only inherits the in-edges. So deleting a
/// store across `f` is sound exactly when writes are not in `f`'s
/// predecessor class — `Frr`/`Frw`/`Frm`. In particular `Fww` (which the
/// read eliminations may cross) makes WAW *unsound*: with
/// `St x; Fww; St x; St y` the deleted store carries the `Fww` edge into
/// `St y`, and dropping it lets an observer see `y` new but `x` stale
/// (`tests/opt_soundness.rs` exercises the counterexample exhaustively).
pub fn elim_may_cross(kind: ElimKind, f: FenceKind) -> bool {
    match kind {
        ElimKind::Raw => matches!(f, FenceKind::Fsc | FenceKind::Fww),
        ElimKind::Rar => matches!(f, FenceKind::Frm | FenceKind::Fww),
        ElimKind::Waw => f.tcg_order().is_some_and(|(pre, _)| !pre.writes),
    }
}

fn elim_allowed(kind: ElimKind, fences: &[FenceKind], policy: OptPolicy) -> bool {
    fences.iter().all(|f| match policy {
        OptPolicy::QemuUnsound => f.is_tcg(),
        OptPolicy::Verified => elim_may_cross(kind, *f),
    })
}

/// Forwards loads and removes dead stores. Two addresses are considered
/// the same only when they are the *same temp* (SSA makes this sound);
/// distinct temps conservatively alias, flushing the tracking state.
fn forward_memory(block: &mut TcgBlock, policy: OptPolicy, stats: &mut OptStats) {
    let mut tracked: Vec<Tracked> = Vec::new();
    let ops = std::mem::take(&mut block.ops);
    let mut out: Vec<TcgOp> = Vec::with_capacity(ops.len());

    for op in ops {
        match &op {
            TcgOp::Fence(k) => {
                for t in &mut tracked {
                    t.fences_since.push(*k);
                }
                out.push(op);
            }
            TcgOp::SideExit { .. } => {
                for t in &mut tracked {
                    t.escaped = true;
                }
                out.push(op);
            }
            TcgOp::Ld { dst, addr } => {
                if let Some(t) = tracked.iter().find(|t| t.addr == *addr) {
                    let (value, kind) = match t.kind {
                        TrackedKind::Store { value } => (value, ElimKind::Raw),
                        TrackedKind::Load { value } => (value, ElimKind::Rar),
                    };
                    if elim_allowed(kind, &t.fences_since, policy) {
                        stats.loads_forwarded += 1;
                        out.push(TcgOp::Mov { dst: *dst, src: value });
                        continue;
                    }
                }
                // A load from a different temp-address may alias a tracked
                // store… loads don't invalidate stores; track this load.
                tracked.retain(|t| t.addr != *addr);
                tracked.push(Tracked {
                    addr: *addr,
                    kind: TrackedKind::Load { value: *dst },
                    fences_since: Vec::new(),
                    escaped: false,
                });
                out.push(op);
            }
            TcgOp::St { addr, src } => {
                // WAW: a previous store to the same temp-address with no
                // blocking fence and no intervening load of that address.
                if let Some(pos) = tracked.iter().position(|t| t.addr == *addr) {
                    let t = &tracked[pos];
                    if let TrackedKind::Store { .. } = t.kind {
                        if !t.escaped && elim_allowed(ElimKind::Waw, &t.fences_since, policy) {
                            // Find the previous store in `out` and drop it.
                            if let Some(idx) = out
                                .iter()
                                .rposition(|o| matches!(o, TcgOp::St { addr: a, .. } if a == addr))
                            {
                                out.remove(idx);
                                stats.stores_eliminated += 1;
                            }
                        }
                    }
                    tracked.remove(pos);
                }
                // Stores to *other* addresses may alias (different temps
                // can hold the same address): invalidate everything except
                // same-temp entries we just handled.
                tracked.retain(|t| t.addr == *addr);
                tracked.push(Tracked {
                    addr: *addr,
                    kind: TrackedKind::Store { value: *src },
                    fences_since: Vec::new(),
                    escaped: false,
                });
                out.push(op);
            }
            TcgOp::Ld8 { .. }
            | TcgOp::St8 { .. }
            | TcgOp::Cas { .. }
            | TcgOp::AtomicAdd { .. }
            | TcgOp::CallHelper { .. } => {
                // Byte accesses may partially overlap tracked 64-bit
                // locations; RMWs and helpers clobber arbitrarily.
                tracked.clear();
                out.push(op);
            }
            _ => out.push(op),
        }
    }
    block.ops = out;
}

// ---------------------------------------------------------------------
// Fence merging (§6.1).
// ---------------------------------------------------------------------

/// Merges runs of fences with no intervening memory access into a single
/// fence (their join, `Fsc`-absorbing) at the earliest position. Returns
/// the number of fences removed.
pub fn merge_fences(block: &mut TcgBlock) -> usize {
    merge_fences_counted(block, &mut [0; 12])
}

/// [`merge_fences`], additionally tallying each removed fence by kind
/// into `by_kind` (indexed per [`FenceKind::tcg_index`]).
pub fn merge_fences_counted(block: &mut TcgBlock, by_kind: &mut [usize; 12]) -> usize {
    merge_fences_region(block, by_kind, &mut 0)
}

/// Region-scoped [`merge_fences_counted`] for superblocks: merges may
/// cross [`TcgOp::TbBoundary`] seams and [`TcgOp::SideExit`] guards
/// (hoisting a later fence to an earlier position only *strengthens* the
/// ordering an off-trace continuation observes), and each merge that did
/// cross such a marker is additionally tallied into `cross` — the
/// paper's intra-block pass can never perform these.
pub fn merge_fences_region(
    block: &mut TcgBlock,
    by_kind: &mut [usize; 12],
    cross: &mut usize,
) -> usize {
    let ops = std::mem::take(&mut block.ops);
    let mut out: Vec<TcgOp> = Vec::with_capacity(ops.len());
    let mut removed = 0usize;
    for op in ops {
        match op {
            TcgOp::Fence(k) => {
                debug_assert!(k.is_tcg(), "non-TCG fence in IR");
                // Find a previous fence with no memory access in between.
                let prev_fence = out.iter().rposition(|o| matches!(o, TcgOp::Fence(_)));
                let mergeable = prev_fence
                    .is_some_and(|idx| out[idx + 1..].iter().all(|o| !o.is_memory_access()));
                if let (Some(idx), true) = (prev_fence, mergeable) {
                    if let TcgOp::Fence(prev) = out[idx] {
                        out[idx] = TcgOp::Fence(prev.tcg_join(k));
                        removed += 1;
                        if let Some(i) = k.tcg_index() {
                            by_kind[i] += 1;
                        }
                        if out[idx + 1..]
                            .iter()
                            .any(|o| matches!(o, TcgOp::TbBoundary { .. } | TcgOp::SideExit { .. }))
                        {
                            *cross += 1;
                        }
                        continue;
                    }
                }
                out.push(TcgOp::Fence(k));
            }
            other => out.push(other),
        }
    }
    block.ops = out;
    removed
}

// ---------------------------------------------------------------------
// Dead code elimination.
// ---------------------------------------------------------------------

/// Removes ops whose results are unused (including irrelevant loads) and
/// `SetReg`s overwritten before any read. Returns the number removed.
pub fn dce(block: &mut TcgBlock) -> usize {
    let mut live = vec![false; block.n_temps as usize];
    match &block.exit {
        TbExit::JumpReg(t) => live[t.0 as usize] = true,
        TbExit::CondJump { flag, .. } => live[flag.0 as usize] = true,
        _ => {}
    }
    let mut keep = vec![true; block.ops.len()];
    let mut env_overwritten = [false; crate::ir::env::COUNT];
    for (i, op) in block.ops.iter().enumerate().rev() {
        let needed = match op {
            TcgOp::SetReg { reg, .. } => {
                let r = *reg as usize;
                let needed = !env_overwritten[r];
                env_overwritten[r] = true;
                needed
            }
            TcgOp::GetReg { dst, reg } => {
                env_overwritten[*reg as usize] = false;
                live[dst.0 as usize]
            }
            TcgOp::SideExit { .. } => {
                // The off-trace continuation re-enters the dispatcher and
                // reads the whole env, so every `SetReg` above the exit
                // is observable no matter what the on-trace suffix
                // overwrites.
                env_overwritten = [false; crate::ir::env::COUNT];
                true
            }
            TcgOp::St { .. }
            | TcgOp::Fence(_)
            | TcgOp::Cas { .. }
            | TcgOp::AtomicAdd { .. }
            | TcgOp::CallHelper { .. }
            | TcgOp::TbBoundary { .. } => true,
            other => other.def().map(|d| live[d.0 as usize]).unwrap_or(true),
        };
        if needed {
            for u in op.uses() {
                live[u.0 as usize] = true;
            }
        } else {
            keep[i] = false;
        }
    }
    let before = block.ops.len();
    let mut i = 0;
    block.ops.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    before - block.ops.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_block;
    use crate::frontend::{translate_block, FrontendConfig};
    use crate::ir::{env, Helper};
    use risotto_guest_x86::{AluOp, Assembler, Gpr, SparseMem};

    fn fetcher(bytes: Vec<u8>, base: u64) -> impl Fn(u64) -> [u8; 16] {
        move |addr| {
            let mut out = [0u8; 16];
            let off = (addr - base) as usize;
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = bytes.get(off + i).copied().unwrap_or(0);
            }
            out
        }
    }

    fn translate(f: impl FnOnce(&mut Assembler), cfg: FrontendConfig) -> TcgBlock {
        let mut a = Assembler::new(0x1000);
        f(&mut a);
        let (bytes, _) = a.finish().unwrap();
        translate_block(0x1000, cfg, fetcher(bytes, 0x1000)).unwrap()
    }

    /// Optimized and unoptimized blocks must agree on env and memory.
    fn check_equivalent(block: &TcgBlock, optimized: &TcgBlock) {
        for seed in 0..4u64 {
            let mut env1 = [0u64; env::COUNT];
            for (i, r) in env1.iter_mut().enumerate() {
                *r = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64 * 13) % 1000;
            }
            env1[Gpr::RSP.index()] = 0x7000_0000;
            let mut env2 = env1;
            let mut m1 = SparseMem::new();
            m1.write_u64(env1[Gpr::RDI.index()], 77);
            let mut m2 = m1.clone();
            let e1 = eval_block(block, &mut env1, &mut m1);
            let e2 = eval_block(optimized, &mut env2, &mut m2);
            assert_eq!(e1, e2);
            assert_eq!(env1, env2, "env mismatch (seed {seed})");
        }
    }

    #[test]
    fn constant_folding_collapses_address_arithmetic() {
        let mut b = translate(
            |a| {
                a.mov_ri(Gpr::RAX, 21);
                a.alu_ri(AluOp::Mul, Gpr::RAX, 2);
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let orig = b.clone();
        let stats = optimize(&mut b, OptPolicy::Verified);
        assert!(stats.folded > 0);
        check_equivalent(&orig, &b);
        // The multiply folded to a constant 42 somewhere.
        assert!(b.ops.iter().any(|o| matches!(o, TcgOp::MovI { val: 42, .. })));
        assert!(b.count_ops(|o| matches!(o, TcgOp::Bin { .. })) == 0);
    }

    #[test]
    fn dce_removes_overwritten_flag_updates() {
        let mut b = translate(
            |a| {
                a.alu_ri(AluOp::Add, Gpr::RAX, 1); // flags dead
                a.alu_ri(AluOp::Add, Gpr::RBX, 2); // flags dead
                a.cmp_ri(Gpr::RAX, 5); // flags live (block exit)
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let orig = b.clone();
        let setregs_before = b.count_ops(|o| matches!(o, TcgOp::SetReg { .. }));
        let stats = optimize(&mut b, OptPolicy::Verified);
        let setregs_after = b.count_ops(|o| matches!(o, TcgOp::SetReg { .. }));
        assert!(stats.dce_removed > 0);
        assert!(setregs_after < setregs_before);
        check_equivalent(&orig, &b);
    }

    #[test]
    fn raw_forwarding_under_verified_policy() {
        // store [rdi]; load [rdi] — same address temp only when the
        // frontend reuses it; here both compute rdi+0 ⇒ same GetReg? No:
        // each instruction re-reads the env, producing different temps.
        // Build the IR by hand to exercise the forwarding machinery.
        let mut b =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        let addr = b.new_temp();
        let val = b.new_temp();
        let loaded = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: addr, reg: 7 },
            TcgOp::MovI { dst: val, val: 99 },
            TcgOp::St { addr, src: val },
            TcgOp::Fence(FenceKind::Fww),
            TcgOp::Ld { dst: loaded, addr },
            TcgOp::SetReg { reg: 0, src: loaded },
        ];
        let orig = b.clone();
        let mut stats = OptStats::default();
        forward_memory(&mut b, OptPolicy::Verified, &mut stats);
        assert_eq!(stats.loads_forwarded, 1, "RAW across Fww is allowed");
        assert_eq!(b.count_ops(|o| matches!(o, TcgOp::Ld { .. })), 0);
        check_equivalent(&orig, &b);

        // Across an Fmr, the verified policy must refuse…
        let mut c = orig.clone();
        c.ops[3] = TcgOp::Fence(FenceKind::Fmr);
        let mut stats = OptStats::default();
        forward_memory(&mut c, OptPolicy::Verified, &mut stats);
        assert_eq!(stats.loads_forwarded, 0, "RAW across Fmr is unsound (FMR)");

        // …while QEMU's policy (unsoundly) forwards.
        let mut d = orig.clone();
        d.ops[3] = TcgOp::Fence(FenceKind::Fmr);
        let mut stats = OptStats::default();
        forward_memory(&mut d, OptPolicy::QemuUnsound, &mut stats);
        assert_eq!(stats.loads_forwarded, 1);
    }

    #[test]
    fn waw_elimination_drops_first_store() {
        let mut b =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        let addr = b.new_temp();
        let v1 = b.new_temp();
        let v2 = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: addr, reg: 7 },
            TcgOp::MovI { dst: v1, val: 1 },
            TcgOp::MovI { dst: v2, val: 2 },
            TcgOp::St { addr, src: v1 },
            TcgOp::St { addr, src: v2 },
        ];
        let orig = b.clone();
        let mut stats = OptStats::default();
        forward_memory(&mut b, OptPolicy::Verified, &mut stats);
        assert_eq!(stats.stores_eliminated, 1);
        assert_eq!(b.count_ops(|o| matches!(o, TcgOp::St { .. })), 1);
        check_equivalent(&orig, &b);
    }

    /// `St addr, 1; Fence(f); St addr, 2` — may the first store go?
    fn waw_across(f: FenceKind, policy: OptPolicy) -> usize {
        let mut b =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        let addr = b.new_temp();
        let v1 = b.new_temp();
        let v2 = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: addr, reg: 7 },
            TcgOp::MovI { dst: v1, val: 1 },
            TcgOp::MovI { dst: v2, val: 2 },
            TcgOp::St { addr, src: v1 },
            TcgOp::Fence(f),
            TcgOp::St { addr, src: v2 },
        ];
        let mut stats = OptStats::default();
        forward_memory(&mut b, policy, &mut stats);
        stats.stores_eliminated
    }

    #[test]
    fn waw_only_crosses_read_predecessor_fences() {
        use FenceKind::*;
        // Sound: the fence orders nothing the deleted write participates
        // in (read-only predecessor class).
        for f in [Frr, Frw, Frm] {
            assert_eq!(waw_across(f, OptPolicy::Verified), 1, "{f:?} blocks a sound WAW");
        }
        // Unsound: the deleted write is in the fence's predecessor class —
        // in particular Fww, which the pre-fix RAR predicate wrongly
        // allowed (single-threaded evaluation cannot see the difference;
        // tests/opt_soundness.rs shows the multi-threaded counterexample).
        for f in [Fwr, Fww, Fwm, Fmr, Fmw, Fmm, Fsc] {
            assert_eq!(waw_across(f, OptPolicy::Verified), 0, "{f:?} must block WAW");
        }
        // The QEMU policy ignores fences entirely — that is the modelled
        // unsoundness, not a bug.
        assert_eq!(waw_across(Fmm, OptPolicy::QemuUnsound), 1);
    }

    #[test]
    fn rar_forwarding_aliases_loads() {
        let mut b =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        let addr = b.new_temp();
        let l1 = b.new_temp();
        let l2 = b.new_temp();
        b.ops = vec![
            TcgOp::GetReg { dst: addr, reg: 7 },
            TcgOp::Ld { dst: l1, addr },
            TcgOp::Ld { dst: l2, addr },
            TcgOp::SetReg { reg: 0, src: l1 },
            TcgOp::SetReg { reg: 1, src: l2 },
        ];
        let orig = b.clone();
        let mut stats = OptStats::default();
        forward_memory(&mut b, OptPolicy::Verified, &mut stats);
        assert_eq!(stats.loads_forwarded, 1);
        check_equivalent(&orig, &b);
    }

    #[test]
    fn fence_merging_reproduces_section_6_1() {
        // a = X; Y = 1 under the verified mapping: ld; Frm; Fww; st —
        // the Frm/Fww pair merges into one full fence.
        let mut b = translate(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.store(Gpr::RSI, 0, Gpr::RAX);
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let orig = b.clone();
        let merged = merge_fences(&mut b);
        assert_eq!(merged, 1);
        assert_eq!(b.count_ops(|o| matches!(o, TcgOp::Fence(_))), 1);
        // The merged fence is Fmm (≡ DMB FF on Arm, like the paper's Fsc).
        assert_eq!(b.count_fences(FenceKind::Fmm), 1);
        check_equivalent(&orig, &b);
    }

    #[test]
    fn fences_do_not_merge_across_memory_accesses() {
        let mut b = translate(
            |a| {
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.load(Gpr::RBX, Gpr::RSI, 0);
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let merged = merge_fences(&mut b);
        assert_eq!(merged, 0, "Frm · Ld · Frm must not merge");
        assert_eq!(b.count_fences(FenceKind::Frm), 2);
    }

    /// `Fence(Frm); <mid ops>; Fence(Fww)` in a hand-built block: how
    /// many fences merge away?
    fn merge_with_between(mk_mid: impl FnOnce(&mut TcgBlock) -> Vec<TcgOp>) -> usize {
        let mut b =
            TcgBlock { guest_pc: 0, guest_len: 0, ops: vec![], exit: TbExit::Halt, n_temps: 0 };
        let mid = mk_mid(&mut b);
        b.ops = vec![TcgOp::Fence(FenceKind::Frm)];
        b.ops.extend(mid);
        b.ops.push(TcgOp::Fence(FenceKind::Fww));
        merge_fences(&mut b)
    }

    #[test]
    fn fences_merge_across_non_memory_ops_only() {
        // Pure register traffic between the fences: still mergeable.
        assert_eq!(
            merge_with_between(|b| {
                let t = b.new_temp();
                vec![TcgOp::MovI { dst: t, val: 9 }, TcgOp::SetReg { reg: 3, src: t }]
            }),
            1,
            "non-memory ops must not break a fence run"
        );
    }

    #[test]
    fn fences_do_not_merge_across_helper_calls() {
        // A helper can touch arbitrary memory (CmpxchgSc *is* an access):
        // merging the surrounding fences past it would reorder its
        // accesses out of their fence classes.
        assert_eq!(
            merge_with_between(|b| {
                let a = b.new_temp();
                let e = b.new_temp();
                let n = b.new_temp();
                let r = b.new_temp();
                vec![
                    TcgOp::GetReg { dst: a, reg: 7 },
                    TcgOp::GetReg { dst: e, reg: 0 },
                    TcgOp::GetReg { dst: n, reg: 1 },
                    TcgOp::CallHelper {
                        helper: Helper::CmpxchgSc,
                        args: vec![a, e, n],
                        ret: Some(r),
                    },
                ]
            }),
            0,
            "CallHelper is a memory access for fence merging"
        );
    }

    #[test]
    fn fences_do_not_merge_across_cas() {
        assert_eq!(
            merge_with_between(|b| {
                let a = b.new_temp();
                let e = b.new_temp();
                let n = b.new_temp();
                let d = b.new_temp();
                vec![
                    TcgOp::GetReg { dst: a, reg: 7 },
                    TcgOp::GetReg { dst: e, reg: 0 },
                    TcgOp::GetReg { dst: n, reg: 1 },
                    TcgOp::Cas { dst: d, addr: a, expect: e, new: n },
                ]
            }),
            0,
            "Cas is a memory access for fence merging"
        );
    }

    #[test]
    fn full_pipeline_on_realistic_block() {
        let mut b = translate(
            |a| {
                a.mov_ri(Gpr::RDI, 0x4000);
                a.load(Gpr::RAX, Gpr::RDI, 0);
                a.alu_ri(AluOp::Add, Gpr::RAX, 5);
                a.store(Gpr::RDI, 8, Gpr::RAX);
                a.alu_ri(AluOp::Mul, Gpr::RBX, 0); // false dependency
                a.cmp_ri(Gpr::RAX, 0);
                a.jcc_to(risotto_guest_x86::Cond::E, "out");
                a.label("out");
                a.hlt();
            },
            FrontendConfig::risotto(),
        );
        let orig = b.clone();
        let before = b.ops.len();
        let stats = optimize(&mut b, OptPolicy::Verified);
        assert!(b.ops.len() < before, "pipeline should shrink the block");
        assert!(stats.folded > 0);
        check_equivalent(&orig, &b);
        // The false dependency rbx*0 folded to a plain constant.
        assert!(!b.ops.iter().any(|o| matches!(o, TcgOp::Bin { op: crate::ir::BinOp::Mul, .. })));
    }
}
