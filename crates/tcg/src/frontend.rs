//! The guest (MiniX86) frontend: decodes one basic block and emits TCG IR.
//!
//! The frontend is where the x86→TCG mapping scheme of the paper is
//! applied: [`FencePlacement::QemuLeading`] reproduces QEMU's Fig. 2
//! (`Fmr; ld`, `Fmw; st`), [`FencePlacement::VerifiedTrailing`] the
//! verified Fig. 7a (`ld; Frm`, `Fww; st`), and [`FencePlacement::None`]
//! the `no-fences` oracle. RMW instructions go through a helper call
//! (QEMU) or the direct `Cas`/`AtomicAdd` ops (Risotto, §6.3). Guest
//! flags are computed eagerly into env registers.

use crate::ir::{env, BinOp, CondOp, Helper, TbExit, TcgBlock, TcgOp, Temp};
use risotto_guest_x86::{AluOp, Cond, DecodeError, FpOp, Gpr, Insn, Operand};
use risotto_memmodel::FenceKind;

/// Where the guest-ordering fences go (the x86→TCG mapping scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FencePlacement {
    /// QEMU's Fig. 2: leading fences. QEMU generates `Fmr`/`Fmw` and then
    /// demotes the `Fmr` to `Frr` for x86 guests (§3.1, store→load
    /// reordering is allowed); we emit the demoted form directly, so loads
    /// lower to `DMBLD; LDR` and stores to `DMBFF; STR` exactly as Fig. 2
    /// shows.
    QemuLeading,
    /// The verified Fig. 7a: `Frm` after loads, `Fww` before stores.
    VerifiedTrailing,
    /// No fences (incorrect oracle).
    None,
}

/// How CAS-style guest RMWs are translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasStrategy {
    /// Call a runtime helper (QEMU's scheme, §2.3).
    Helper,
    /// Emit the dedicated TCG `Cas`/`AtomicAdd` op (Risotto, §6.3).
    TcgOp,
}

/// Frontend configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfig {
    /// Fence-placement scheme.
    pub fences: FencePlacement,
    /// RMW translation strategy.
    pub cas: CasStrategy,
}

impl FrontendConfig {
    /// QEMU 6.1 behavior.
    pub fn qemu() -> FrontendConfig {
        FrontendConfig { fences: FencePlacement::QemuLeading, cas: CasStrategy::Helper }
    }

    /// Risotto: verified mappings + direct CAS.
    pub fn risotto() -> FrontendConfig {
        FrontendConfig { fences: FencePlacement::VerifiedTrailing, cas: CasStrategy::TcgOp }
    }

    /// Verified mappings but QEMU's helper-based CAS (`tcg-ver` setup).
    pub fn tcg_ver() -> FrontendConfig {
        FrontendConfig { fences: FencePlacement::VerifiedTrailing, cas: CasStrategy::Helper }
    }

    /// The incorrect fence-free oracle (`no-fences` setup).
    pub fn no_fences() -> FrontendConfig {
        FrontendConfig { fences: FencePlacement::None, cas: CasStrategy::TcgOp }
    }
}

/// Frontend errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// Faulting guest pc.
    pub pc: u64,
    /// Underlying decode error.
    pub cause: DecodeError,
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation fault at {:#x}: {}", self.pc, self.cause)
    }
}

impl std::error::Error for TranslateError {}

/// Maximum guest instructions per translation block.
pub const MAX_TB_INSNS: usize = 64;

struct Ctx {
    block: TcgBlock,
    cfg: FrontendConfig,
}

impl Ctx {
    fn temp(&mut self) -> Temp {
        self.block.new_temp()
    }

    fn emit(&mut self, op: TcgOp) {
        self.block.ops.push(op);
    }

    fn movi(&mut self, val: u64) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::MovI { dst: t, val });
        t
    }

    fn get_reg(&mut self, r: Gpr) -> Temp {
        let t = self.temp();
        self.emit(TcgOp::GetReg { dst: t, reg: r.0 });
        t
    }

    fn set_reg(&mut self, r: Gpr, src: Temp) {
        self.emit(TcgOp::SetReg { reg: r.0, src });
    }

    fn bin(&mut self, op: BinOp, a: Temp, b: Temp) -> Temp {
        let dst = self.temp();
        self.emit(TcgOp::Bin { op, dst, a, b });
        dst
    }

    fn setcond(&mut self, cond: CondOp, a: Temp, b: Temp) -> Temp {
        let dst = self.temp();
        self.emit(TcgOp::Setcond { cond, dst, a, b });
        dst
    }

    fn operand(&mut self, o: Operand) -> Temp {
        match o {
            Operand::Reg(r) => self.get_reg(r),
            Operand::Imm(i) => self.movi(i),
        }
    }

    fn address(&mut self, base: Gpr, disp: i32) -> Temp {
        let b = self.get_reg(base);
        if disp == 0 {
            return b;
        }
        let d = self.movi(disp as i64 as u64);
        self.bin(BinOp::Add, b, d)
    }

    /// Emits a guest load with the configured fence placement.
    fn guest_load(&mut self, addr: Temp) -> Temp {
        if self.cfg.fences == FencePlacement::QemuLeading {
            self.emit(TcgOp::Fence(FenceKind::Frr));
        }
        let dst = self.temp();
        self.emit(TcgOp::Ld { dst, addr });
        if self.cfg.fences == FencePlacement::VerifiedTrailing {
            self.emit(TcgOp::Fence(FenceKind::Frm));
        }
        dst
    }

    /// Emits a guest store with the configured fence placement.
    fn guest_store(&mut self, addr: Temp, src: Temp) {
        match self.cfg.fences {
            FencePlacement::QemuLeading => self.emit(TcgOp::Fence(FenceKind::Fmw)),
            FencePlacement::VerifiedTrailing => self.emit(TcgOp::Fence(FenceKind::Fww)),
            FencePlacement::None => {}
        }
        self.emit(TcgOp::St { addr, src });
    }

    /// Flags for `a - b` with result `res`.
    fn flags_sub(&mut self, a: Temp, b: Temp, res: Temp) {
        let zero = self.movi(0);
        let zf = self.setcond(CondOp::Eq, res, zero);
        self.emit(TcgOp::SetReg { reg: env::ZF, src: zf });
        let sixty3 = self.movi(63);
        let sf = self.bin(BinOp::Shr, res, sixty3);
        self.emit(TcgOp::SetReg { reg: env::SF, src: sf });
        let cf = self.setcond(CondOp::LtU, a, b);
        self.emit(TcgOp::SetReg { reg: env::CF, src: cf });
        // of = ((a ^ b) & (a ^ res)) >> 63
        let axb = self.bin(BinOp::Xor, a, b);
        let axr = self.bin(BinOp::Xor, a, res);
        let both = self.bin(BinOp::And, axb, axr);
        let of = self.bin(BinOp::Shr, both, sixty3);
        self.emit(TcgOp::SetReg { reg: env::OF, src: of });
    }

    /// Flags for `a + b` with result `res`.
    fn flags_add(&mut self, a: Temp, b: Temp, res: Temp) {
        let zero = self.movi(0);
        let zf = self.setcond(CondOp::Eq, res, zero);
        self.emit(TcgOp::SetReg { reg: env::ZF, src: zf });
        let sixty3 = self.movi(63);
        let sf = self.bin(BinOp::Shr, res, sixty3);
        self.emit(TcgOp::SetReg { reg: env::SF, src: sf });
        let cf = self.setcond(CondOp::LtU, res, a);
        self.emit(TcgOp::SetReg { reg: env::CF, src: cf });
        // of = (~(a ^ b) & (a ^ res)) >> 63
        let axb = self.bin(BinOp::Xor, a, b);
        let ones = self.movi(u64::MAX);
        let naxb = self.bin(BinOp::Xor, axb, ones);
        let axr = self.bin(BinOp::Xor, a, res);
        let both = self.bin(BinOp::And, naxb, axr);
        let of = self.bin(BinOp::Shr, both, sixty3);
        self.emit(TcgOp::SetReg { reg: env::OF, src: of });
    }

    /// Flags for logical result `res` (CF = OF = 0).
    fn flags_logic(&mut self, res: Temp) {
        let zero = self.movi(0);
        let zf = self.setcond(CondOp::Eq, res, zero);
        self.emit(TcgOp::SetReg { reg: env::ZF, src: zf });
        let sixty3 = self.movi(63);
        let sf = self.bin(BinOp::Shr, res, sixty3);
        self.emit(TcgOp::SetReg { reg: env::SF, src: sf });
        let z2 = self.movi(0);
        self.emit(TcgOp::SetReg { reg: env::CF, src: z2 });
        self.emit(TcgOp::SetReg { reg: env::OF, src: z2 });
    }

    /// Computes a branch-condition temp (0/1) from the flag env regs.
    fn cond_temp(&mut self, cond: Cond) -> Temp {
        let getf = |c: &mut Ctx, reg: u8| {
            let t = c.temp();
            c.emit(TcgOp::GetReg { dst: t, reg });
            t
        };
        let one = self.movi(1);
        match cond {
            Cond::E => getf(self, env::ZF),
            Cond::Ne => {
                let zf = getf(self, env::ZF);
                self.bin(BinOp::Xor, zf, one)
            }
            Cond::L => {
                let sf = getf(self, env::SF);
                let of = getf(self, env::OF);
                self.bin(BinOp::Xor, sf, of)
            }
            Cond::Ge => {
                let sf = getf(self, env::SF);
                let of = getf(self, env::OF);
                let l = self.bin(BinOp::Xor, sf, of);
                self.bin(BinOp::Xor, l, one)
            }
            Cond::Le => {
                let zf = getf(self, env::ZF);
                let sf = getf(self, env::SF);
                let of = getf(self, env::OF);
                let l = self.bin(BinOp::Xor, sf, of);
                self.bin(BinOp::Or, zf, l)
            }
            Cond::G => {
                let zf = getf(self, env::ZF);
                let sf = getf(self, env::SF);
                let of = getf(self, env::OF);
                let l = self.bin(BinOp::Xor, sf, of);
                let le = self.bin(BinOp::Or, zf, l);
                self.bin(BinOp::Xor, le, one)
            }
            Cond::B => getf(self, env::CF),
            Cond::Ae => {
                let cf = getf(self, env::CF);
                self.bin(BinOp::Xor, cf, one)
            }
            Cond::Be => {
                let cf = getf(self, env::CF);
                let zf = getf(self, env::ZF);
                self.bin(BinOp::Or, cf, zf)
            }
            Cond::A => {
                let cf = getf(self, env::CF);
                let zf = getf(self, env::ZF);
                let be = self.bin(BinOp::Or, cf, zf);
                self.bin(BinOp::Xor, be, one)
            }
            Cond::S => getf(self, env::SF),
            Cond::Ns => {
                let sf = getf(self, env::SF);
                self.bin(BinOp::Xor, sf, one)
            }
        }
    }

    fn push_ra(&mut self, ra: u64) {
        let sp = self.get_reg(Gpr::RSP);
        let eight = self.movi(8);
        let nsp = self.bin(BinOp::Sub, sp, eight);
        self.set_reg(Gpr::RSP, nsp);
        let rat = self.movi(ra);
        // Stack traffic is thread-private: emitted as plain accesses, and
        // like QEMU we still apply the configured ordering fences.
        self.guest_store(nsp, rat);
    }
}

/// Translates one basic block starting at `pc` from `fetch` (a callback
/// returning up to 16 bytes at a guest address).
///
/// # Errors
///
/// Returns [`TranslateError`] if instruction decoding fails.
pub fn translate_block<F>(
    pc: u64,
    cfg: FrontendConfig,
    fetch: F,
) -> Result<TcgBlock, TranslateError>
where
    F: Fn(u64) -> [u8; 16],
{
    let mut ctx = Ctx {
        block: TcgBlock {
            guest_pc: pc,
            guest_len: 0,
            ops: Vec::new(),
            exit: TbExit::Halt,
            n_temps: 0,
        },
        cfg,
    };
    let mut cur = pc;
    for _ in 0..MAX_TB_INSNS {
        let window = fetch(cur);
        let (insn, len) =
            Insn::decode(&window).map_err(|cause| TranslateError { pc: cur, cause })?;
        let next = cur + len as u64;
        match insn {
            Insn::MovRI { dst, imm } => {
                let t = ctx.movi(imm);
                ctx.set_reg(dst, t);
            }
            Insn::MovRR { dst, src } => {
                let t = ctx.get_reg(src);
                ctx.set_reg(dst, t);
            }
            Insn::Load { dst, base, disp } => {
                let addr = ctx.address(base, disp);
                let v = ctx.guest_load(addr);
                ctx.set_reg(dst, v);
            }
            Insn::Store { base, disp, src } => {
                let addr = ctx.address(base, disp);
                let v = ctx.get_reg(src);
                ctx.guest_store(addr, v);
            }
            Insn::LoadB { dst, base, disp } => {
                let addr = ctx.address(base, disp);
                if cfg.fences == FencePlacement::QemuLeading {
                    ctx.emit(TcgOp::Fence(FenceKind::Frr));
                }
                let v = ctx.temp();
                ctx.emit(TcgOp::Ld8 { dst: v, addr });
                if cfg.fences == FencePlacement::VerifiedTrailing {
                    ctx.emit(TcgOp::Fence(FenceKind::Frm));
                }
                ctx.set_reg(dst, v);
            }
            Insn::StoreB { base, disp, src } => {
                let addr = ctx.address(base, disp);
                let v = ctx.get_reg(src);
                match cfg.fences {
                    FencePlacement::QemuLeading => ctx.emit(TcgOp::Fence(FenceKind::Fmw)),
                    FencePlacement::VerifiedTrailing => ctx.emit(TcgOp::Fence(FenceKind::Fww)),
                    FencePlacement::None => {}
                }
                ctx.emit(TcgOp::St8 { addr, src: v });
            }
            Insn::MulWide { src } => {
                let a = ctx.get_reg(Gpr::RAX);
                let b = ctx.get_reg(src);
                let lo = ctx.bin(BinOp::Mul, a, b);
                let hi = ctx.bin(BinOp::MulHi, a, b);
                ctx.set_reg(Gpr::RAX, lo);
                ctx.set_reg(Gpr::RDX, hi);
            }
            Insn::Lea { dst, base, disp } => {
                let addr = ctx.address(base, disp);
                ctx.set_reg(dst, addr);
            }
            Insn::Alu { op, dst, src } => {
                let a = ctx.get_reg(dst);
                let b = ctx.operand(src);
                let bop = match op {
                    AluOp::Add => BinOp::Add,
                    AluOp::Sub => BinOp::Sub,
                    AluOp::And => BinOp::And,
                    AluOp::Or => BinOp::Or,
                    AluOp::Xor => BinOp::Xor,
                    AluOp::Shl => BinOp::Shl,
                    AluOp::Shr => BinOp::Shr,
                    AluOp::Sar => BinOp::Sar,
                    AluOp::Mul => BinOp::Mul,
                };
                let res = ctx.bin(bop, a, b);
                ctx.set_reg(dst, res);
                match op {
                    AluOp::Add => ctx.flags_add(a, b, res),
                    AluOp::Sub => ctx.flags_sub(a, b, res),
                    _ => ctx.flags_logic(res),
                }
            }
            Insn::Div { src } => {
                let a = ctx.get_reg(Gpr::RAX);
                let d = ctx.get_reg(src);
                let q = ctx.bin(BinOp::Divu, a, d);
                let r = ctx.bin(BinOp::Remu, a, d);
                ctx.set_reg(Gpr::RAX, q);
                ctx.set_reg(Gpr::RDX, r);
            }
            Insn::Fp { op, dst, src } => {
                let a = ctx.get_reg(dst);
                let b = ctx.get_reg(src);
                let helper = match op {
                    FpOp::Add => Helper::FpAdd,
                    FpOp::Sub => Helper::FpSub,
                    FpOp::Mul => Helper::FpMul,
                    FpOp::Div => Helper::FpDiv,
                    FpOp::Sqrt => Helper::FpSqrt,
                    FpOp::CvtIF => Helper::FpCvtIF,
                    FpOp::CvtFI => Helper::FpCvtFI,
                };
                let ret = ctx.temp();
                ctx.emit(TcgOp::CallHelper { helper, args: vec![a, b], ret: Some(ret) });
                ctx.set_reg(dst, ret);
            }
            Insn::Cmp { a, b } => {
                let ta = ctx.get_reg(a);
                let tb = ctx.operand(b);
                let res = ctx.bin(BinOp::Sub, ta, tb);
                ctx.flags_sub(ta, tb, res);
            }
            Insn::Test { a, b } => {
                let ta = ctx.get_reg(a);
                let tb = ctx.operand(b);
                let res = ctx.bin(BinOp::And, ta, tb);
                ctx.flags_logic(res);
            }
            Insn::Jcc { cond, rel } => {
                let flag = ctx.cond_temp(cond);
                ctx.block.exit = TbExit::CondJump {
                    flag,
                    taken: next.wrapping_add(rel as i64 as u64),
                    fallthrough: next,
                };
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::Jmp { rel } => {
                ctx.block.exit = TbExit::Jump(next.wrapping_add(rel as i64 as u64));
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::JmpReg { reg } => {
                let t = ctx.get_reg(reg);
                ctx.block.exit = TbExit::JumpReg(t);
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::Call { rel } => {
                ctx.push_ra(next);
                ctx.block.exit = TbExit::Jump(next.wrapping_add(rel as i64 as u64));
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::CallReg { reg } => {
                let target = ctx.get_reg(reg);
                ctx.push_ra(next);
                ctx.block.exit = TbExit::JumpReg(target);
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::Ret => {
                let sp = ctx.get_reg(Gpr::RSP);
                let ra = ctx.guest_load(sp);
                let eight = ctx.movi(8);
                let nsp = ctx.bin(BinOp::Add, sp, eight);
                ctx.set_reg(Gpr::RSP, nsp);
                ctx.block.exit = TbExit::JumpReg(ra);
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::Push { src } => {
                let v = ctx.get_reg(src);
                let sp = ctx.get_reg(Gpr::RSP);
                let eight = ctx.movi(8);
                let nsp = ctx.bin(BinOp::Sub, sp, eight);
                ctx.set_reg(Gpr::RSP, nsp);
                ctx.guest_store(nsp, v);
            }
            Insn::Pop { dst } => {
                let sp = ctx.get_reg(Gpr::RSP);
                let v = ctx.guest_load(sp);
                let eight = ctx.movi(8);
                let nsp = ctx.bin(BinOp::Add, sp, eight);
                ctx.set_reg(Gpr::RSP, nsp);
                ctx.set_reg(dst, v);
            }
            Insn::LockCmpxchg { base, disp, src } => {
                let addr = ctx.address(base, disp);
                let expect = ctx.get_reg(Gpr::RAX);
                let newv = ctx.get_reg(src);
                let old = match cfg.cas {
                    CasStrategy::TcgOp => {
                        let old = ctx.temp();
                        ctx.emit(TcgOp::Cas { dst: old, addr, expect, new: newv });
                        old
                    }
                    CasStrategy::Helper => {
                        let old = ctx.temp();
                        ctx.emit(TcgOp::CallHelper {
                            helper: Helper::CmpxchgSc,
                            args: vec![addr, expect, newv],
                            ret: Some(old),
                        });
                        old
                    }
                };
                // RAX = old (on success old == expected, so this is a
                // no-op there); ZF = (old == expected).
                ctx.set_reg(Gpr::RAX, old);
                let zf = ctx.setcond(CondOp::Eq, old, expect);
                ctx.emit(TcgOp::SetReg { reg: env::ZF, src: zf });
                let zero = ctx.movi(0);
                ctx.emit(TcgOp::SetReg { reg: env::SF, src: zero });
                ctx.emit(TcgOp::SetReg { reg: env::CF, src: zero });
                ctx.emit(TcgOp::SetReg { reg: env::OF, src: zero });
            }
            Insn::LockXadd { base, disp, src } => {
                let addr = ctx.address(base, disp);
                let add = ctx.get_reg(src);
                let old = match cfg.cas {
                    CasStrategy::TcgOp => {
                        let old = ctx.temp();
                        ctx.emit(TcgOp::AtomicAdd { dst: old, addr, val: add });
                        old
                    }
                    CasStrategy::Helper => {
                        let old = ctx.temp();
                        ctx.emit(TcgOp::CallHelper {
                            helper: Helper::XaddSc,
                            args: vec![addr, add],
                            ret: Some(old),
                        });
                        old
                    }
                };
                ctx.set_reg(src, old);
            }
            Insn::Mfence => ctx.emit(TcgOp::Fence(FenceKind::Fsc)),
            Insn::Nop => {}
            Insn::Hlt => {
                ctx.block.exit = TbExit::Halt;
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
            Insn::Syscall => {
                ctx.block.exit = TbExit::Syscall { next };
                ctx.block.guest_len = (next - pc) as usize;
                return Ok(ctx.block);
            }
        }
        cur = next;
    }
    // TB size limit reached: end with a fallthrough jump.
    ctx.block.exit = TbExit::Jump(cur);
    ctx.block.guest_len = (cur - pc) as usize;
    Ok(ctx.block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_guest_x86::Assembler;

    fn assemble(f: impl FnOnce(&mut Assembler)) -> Vec<u8> {
        let mut a = Assembler::new(0x1000);
        f(&mut a);
        a.finish().expect("assembles").0
    }

    fn fetcher(bytes: Vec<u8>) -> impl Fn(u64) -> [u8; 16] {
        move |addr| {
            let mut out = [0u8; 16];
            let off = (addr - 0x1000) as usize;
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = bytes.get(off + i).copied().unwrap_or(0);
            }
            out
        }
    }

    #[test]
    fn qemu_fences_lead_verified_fences_trail() {
        let bytes = assemble(|a| {
            a.load(Gpr::RAX, Gpr::RDI, 0);
            a.store(Gpr::RSI, 0, Gpr::RAX);
            a.hlt();
        });
        let q = translate_block(0x1000, FrontendConfig::qemu(), fetcher(bytes.clone()))
            .expect("translates");
        assert_eq!(q.count_fences(FenceKind::Frr), 1, "Fmr demoted to Frr for x86 guests");
        assert_eq!(q.count_fences(FenceKind::Fmw), 1);
        // The (demoted) leading fence precedes the Ld.
        let frr = q
            .ops
            .iter()
            .position(|o| matches!(o, TcgOp::Fence(FenceKind::Frr)))
            .expect("op present");
        let ld = q.ops.iter().position(|o| matches!(o, TcgOp::Ld { .. })).expect("op present");
        assert!(frr < ld);

        let v = translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes.clone()))
            .expect("translates");
        assert_eq!(v.count_fences(FenceKind::Frm), 1);
        assert_eq!(v.count_fences(FenceKind::Fww), 1);
        let frm = v
            .ops
            .iter()
            .position(|o| matches!(o, TcgOp::Fence(FenceKind::Frm)))
            .expect("op present");
        let ld = v.ops.iter().position(|o| matches!(o, TcgOp::Ld { .. })).expect("op present");
        assert!(ld < frm);

        let n = translate_block(0x1000, FrontendConfig::no_fences(), fetcher(bytes))
            .expect("translates");
        assert_eq!(n.count_ops(|o| matches!(o, TcgOp::Fence(_))), 0);
    }

    #[test]
    fn cas_strategy_selects_op_or_helper() {
        let bytes = assemble(|a| {
            a.cmpxchg(Gpr::RDI, 0, Gpr::RSI);
            a.hlt();
        });
        let r = translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes.clone()))
            .expect("translates");
        assert_eq!(r.count_ops(|o| matches!(o, TcgOp::Cas { .. })), 1);
        assert_eq!(r.count_ops(|o| matches!(o, TcgOp::CallHelper { .. })), 0);
        let q =
            translate_block(0x1000, FrontendConfig::qemu(), fetcher(bytes)).expect("translates");
        assert_eq!(q.count_ops(|o| matches!(o, TcgOp::Cas { .. })), 0);
        assert_eq!(
            q.count_ops(|o| matches!(o, TcgOp::CallHelper { helper: Helper::CmpxchgSc, .. })),
            1
        );
    }

    #[test]
    fn block_ends_at_terminator() {
        let bytes = assemble(|a| {
            a.mov_ri(Gpr::RAX, 1);
            a.mov_ri(Gpr::RBX, 2);
            a.jmp_to("next");
            a.label("next");
            a.hlt();
        });
        let b =
            translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes)).expect("translates");
        match b.exit {
            TbExit::Jump(t) => assert_eq!(t, 0x1000 + 10 + 10 + 5),
            ref e => unreachable!("unexpected exit {e:?}"),
        }
        assert_eq!(b.guest_len, 25);
    }

    #[test]
    fn mfence_becomes_fsc() {
        let bytes = assemble(|a| {
            a.mfence();
            a.hlt();
        });
        let b =
            translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes)).expect("translates");
        assert_eq!(b.count_fences(FenceKind::Fsc), 1);
    }

    #[test]
    fn fp_goes_through_soft_float_helpers() {
        let bytes = assemble(|a| {
            a.fp(FpOp::Mul, Gpr::RAX, Gpr::RBX);
            a.hlt();
        });
        let b =
            translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes)).expect("translates");
        assert_eq!(
            b.count_ops(|o| matches!(o, TcgOp::CallHelper { helper: Helper::FpMul, .. })),
            1
        );
    }

    #[test]
    fn syscall_and_condjump_exits() {
        let bytes = assemble(|a| {
            a.syscall();
        });
        let b =
            translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes)).expect("translates");
        assert_eq!(b.exit, TbExit::Syscall { next: 0x1001 });

        let bytes = assemble(|a| {
            a.cmp_ri(Gpr::RAX, 5);
            a.jcc_to(risotto_guest_x86::Cond::E, "target");
            a.label("target");
            a.hlt();
        });
        let b =
            translate_block(0x1000, FrontendConfig::risotto(), fetcher(bytes)).expect("translates");
        match b.exit {
            TbExit::CondJump { taken, fallthrough, .. } => {
                assert_eq!(taken, fallthrough, "branch to fallthrough label");
            }
            ref e => unreachable!("unexpected exit {e:?}"),
        }
    }
}
