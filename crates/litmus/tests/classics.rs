//! Classic litmus shapes with their textbook verdicts, plus the Arm
//! synchronizing-access and dependency behaviors the paper's models must
//! capture (release/acquire pairs, `dob`, coherence).

use risotto_litmus::{allows, corpus, Behavior, Expr, LocSpec, Program, Reg};
use risotto_memmodel::{AccessMode, Arm, FenceKind, Loc, MemoryModel, Sc, TcgIr, X86Tso};

const X: Loc = Loc(0);
const Y: Loc = Loc(1);
const A: Reg = Reg(0);
const B: Reg = Reg(1);

fn check<M: MemoryModel + ?Sized>(
    model: &M,
    p: &Program,
    pred: impl Fn(&Behavior) -> bool,
    expect: bool,
) {
    assert_eq!(
        allows(p, model, &pred),
        expect,
        "{} under {}: expected {}",
        p.name,
        model.name(),
        if expect { "allowed" } else { "forbidden" }
    );
}

/// 2+2W: requires write-write reordering — forbidden on x86, allowed on Arm.
#[test]
fn two_plus_two_w_verdicts() {
    let p = corpus::two_plus_two_w();
    let weak = |b: &Behavior| b.mem_at(X) == 1 && b.mem_at(Y) == 1;
    check(&Sc::new(), &p, weak, false);
    check(&X86Tso::new(), &p, weak, false);
    check(&Arm::corrected(), &p, weak, true);
    check(&TcgIr::new(), &p, weak, true);
}

/// S: `W X=2; W Y=1 ∥ a=Y(1); W X=1` with final `X=2` — forbidden on x86
/// (the cycle closes through ppo W→W and R→W), allowed on Arm.
#[test]
fn s_test_verdicts() {
    let p = corpus::s_test();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.mem_at(X) == 2;
    check(&Sc::new(), &p, weak, false);
    check(&X86Tso::new(), &p, weak, false);
    check(&Arm::corrected(), &p, weak, true);
}

/// R: embeds a store→load reordering, so even x86 allows it.
#[test]
fn r_test_verdicts() {
    let p = corpus::r_test();
    let weak = |b: &Behavior| b.mem_at(Y) == 2 && b.reg(1, A) == 0;
    check(&Sc::new(), &p, weak, false);
    check(&X86Tso::new(), &p, weak, true);
    check(&Arm::corrected(), &p, weak, true);
}

/// Coherence shapes are forbidden under every model (sc-per-loc).
#[test]
fn coherence_family_forbidden_everywhere() {
    // CoWR: read own overwritten value.
    let cowr = Program::builder("CoWR")
        .thread(|t| {
            t.store(X, 1).store(X, 2).load(A, X);
        })
        .build();
    // CoRW1: read a value, then overwrite; the read must not see the later
    // own write.
    let corw = Program::builder("CoRW1")
        .thread(|t| {
            t.load(A, X).store(X, 1);
        })
        .build();
    let models: [&dyn MemoryModel; 4] =
        [&Sc::new(), &X86Tso::new(), &TcgIr::new(), &Arm::corrected()];
    for m in models {
        check(m, &cowr, |b| b.reg(0, A) == 1, false); // must read 2
        check(m, &cowr, |b| b.reg(0, A) == 2, true);
        check(m, &corw, |b| b.reg(0, A) == 1, false); // own future write
        check(m, &corw, |b| b.reg(0, A) == 0, true);
    }
}

/// MP with release store + acquire load: forbidden on Arm (the `[L];po;[A]`
/// and `[A];po` bob clauses), while the plain version is allowed.
#[test]
fn arm_release_acquire_restores_mp() {
    let ra = Program::builder("MP+rel-acq")
        .thread(|t| {
            t.store(X, 1).store_mode(Y, 1, AccessMode::Release);
        })
        .thread(|t| {
            t.load_mode(A, Y, AccessMode::Acquire).load(B, X);
        })
        .build();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&Arm::corrected(), &ra, weak, false);
    check(&Arm::original(), &ra, weak, false);
    // Acquire-PC (LDAPR) also suffices for this shape.
    let rq = Program::builder("MP+rel-acqpc")
        .thread(|t| {
            t.store(X, 1).store_mode(Y, 1, AccessMode::Release);
        })
        .thread(|t| {
            t.load_mode(A, Y, AccessMode::AcquirePc).load(B, X);
        })
        .build();
    check(&Arm::corrected(), &rq, weak, false);
}

/// LB with data dependencies: Arm's `dob` forbids it; stripping the
/// dependency re-allows it.
#[test]
fn arm_data_dependencies_forbid_lb() {
    let dep = Program::builder("LB+datas")
        .thread(|t| {
            t.load(A, X);
            t.store(Y, Expr::Reg(A));
        })
        .thread(|t| {
            t.load(B, Y);
            t.store(X, Expr::Reg(B));
        })
        .build();
    // a = b = 1 would require values out of thin air; with 0/1 potential
    // sets the only suspicious outcome is reading each other's stores:
    let weak = |b: &Behavior| b.reg(0, A) != 0 || b.reg(1, B) != 0;
    check(&Arm::corrected(), &dep, weak, false);
    // Same shape with constant stores (no dependency): allowed.
    let nodep = corpus::lb();
    let weak2 = |b: &Behavior| b.reg(0, A) == 1 && b.reg(1, B) == 1;
    check(&Arm::corrected(), &nodep, weak2, true);
}

/// Address dependencies order loads on Arm: MP+dmb.st+addr is forbidden,
/// and removing the address dependency re-allows the weak outcome.
#[test]
fn arm_address_dependency_matters() {
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&Arm::corrected(), &corpus::mp_addr_dep(), weak, false);
    let without = Program::builder("MP+dmb.st-only")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::DmbSt).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).load(B, X);
        })
        .build();
    check(&Arm::corrected(), &without, weak, true);
}

/// Arm control dependencies order read→write but not read→read.
#[test]
fn arm_control_dependency_orders_writes_only() {
    // MP with a ctrl dep into the second *store*: forbidden…
    let ctrl_w = Program::builder("S+ctrl")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::DmbSt).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).if_eq(A, 1, |bb| {
                bb.store(X, 2);
            });
        })
        .build();
    // Outcome: T1 saw Y=1 but its dependent store hit memory "before" the
    // X=1 it implies — i.e. final X=1 with a=1 (X=2 overwritten by X=1).
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.mem_at(X) == 1;
    check(&Arm::corrected(), &ctrl_w, weak, false);

    // …but a ctrl dep into a *read* does not order it (the MPQ root cause):
    let ctrl_r = Program::builder("MP+ctrl-read")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::DmbSt).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).if_eq(A, 1, |bb| {
                bb.load(B, X);
            });
        })
        .build();
    let weak_r = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&Arm::corrected(), &ctrl_r, weak_r, true);
}

/// The artificial-address-dependency idiom (`X[r⊕r]`) used by real litmus
/// tests is honoured by the elaborator: the dependency edge exists even
/// though the address is constant.
#[test]
fn false_address_dependency_still_orders() {
    let p = Program::builder("MP+fake-addr")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::DmbSt).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y);
            t.load(B, LocSpec::Dep { loc: X, via: A });
        })
        .build();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&Arm::corrected(), &p, weak, false);
    // The TCG model ignores dependencies entirely (§5.4) — allowed there.
    check(&TcgIr::new(), &p, weak, true);
}

/// WRC (write-to-read causality, 3 threads): forbidden on x86; allowed on
/// plain Arm; forbidden on Arm once the chain is dependency-ordered.
#[test]
fn wrc_three_thread_causality() {
    let c = Reg(2);
    let d = Reg(3);
    let plain = Program::builder("WRC")
        .thread(|t| {
            t.store(X, 1);
        })
        .thread(|t| {
            t.load(A, X).store(Y, 1);
        })
        .thread(|t| {
            t.load(c, Y);
            t.load(d, X);
        })
        .build();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(2, Reg(2)) == 1 && b.reg(2, Reg(3)) == 0;
    check(&X86Tso::new(), &plain, weak, false);
    check(&Arm::corrected(), &plain, weak, true);

    // WRC+data+addr: the T1 write carries a data dependency on its read,
    // and T2's second load an address dependency on its first.
    let dep = Program::builder("WRC+data+addr")
        .thread(|t| {
            t.store(X, 1);
        })
        .thread(|t| {
            t.load(A, X);
            t.store(Y, Expr::Reg(A));
        })
        .thread(|t| {
            t.load(c, Y);
            t.load_mode(d, LocSpec::Dep { loc: X, via: c }, AccessMode::Plain);
        })
        .build();
    check(&Arm::corrected(), &dep, weak, false);
}

/// ISA2 (3-thread message chain): forbidden on x86; the release/acquire
/// chain also forbids it on Arm, plain accesses do not.
#[test]
fn isa2_three_thread_chain() {
    const Z2: Loc = Loc(2);
    let c = Reg(2);
    let d = Reg(3);
    let plain = Program::builder("ISA2")
        .thread(|t| {
            t.store(X, 1).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).store(Z2, 1);
        })
        .thread(|t| {
            t.load(c, Z2);
            t.load(d, X);
        })
        .build();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(2, Reg(2)) == 1 && b.reg(2, Reg(3)) == 0;
    check(&X86Tso::new(), &plain, weak, false);
    check(&Arm::corrected(), &plain, weak, true);

    let sync = Program::builder("ISA2+rel-acq")
        .thread(|t| {
            t.store(X, 1).store_mode(Y, 1, AccessMode::Release);
        })
        .thread(|t| {
            t.load_mode(A, Y, AccessMode::Acquire).store_mode(Z2, 1, AccessMode::Release);
        })
        .thread(|t| {
            t.load_mode(c, Z2, AccessMode::Acquire);
            t.load(d, X);
        })
        .build();
    check(&Arm::corrected(), &sync, weak, false);
}
