//! Mechanized checks of every allowed/forbidden claim the paper makes about
//! its example programs (§2.1, §3.2, §3.3, Fig. 8, Fig. 9).
//!
//! These tests are the executable counterpart of the paper's Agda
//! development: each claim is decided by exhaustive candidate-execution
//! enumeration under the corresponding formal model.

use risotto_litmus::corpus::{A, B, C, U, X, Y, Z};
use risotto_litmus::{allows, behaviors, corpus, Behavior};
use risotto_memmodel::{Arm, MemoryModel, Sc, TcgIr, X86Tso};

fn check<M: MemoryModel>(
    model: &M,
    prog: &risotto_litmus::Program,
    outcome: impl Fn(&Behavior) -> bool,
    expect_allowed: bool,
) {
    let got = allows(prog, model, &outcome);
    assert_eq!(
        got,
        expect_allowed,
        "{}: outcome expected {} under {}",
        prog.name,
        if expect_allowed { "ALLOWED" } else { "FORBIDDEN" },
        model.name()
    );
}

// ---------------------------------------------------------------- §2.1 --

#[test]
fn mp_weak_outcome_allowed_on_arm_forbidden_on_x86() {
    let p = corpus::mp();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&Arm::corrected(), &p, weak, true);
    check(&Arm::original(), &p, weak, true);
    check(&X86Tso::new(), &p, weak, false);
    check(&Sc::new(), &p, weak, false);
    // The bare TCG model orders nothing between plain accesses either.
    check(&TcgIr::new(), &p, weak, true);
}

#[test]
fn sb_weak_outcome_allowed_on_x86() {
    let p = corpus::sb();
    let weak = |b: &Behavior| b.reg(0, A) == 0 && b.reg(1, B) == 0;
    check(&X86Tso::new(), &p, weak, true);
    check(&Sc::new(), &p, weak, false);
    // MFENCE restores SC for this shape.
    let f = corpus::sb_fenced();
    check(&X86Tso::new(), &f, weak, false);
}

#[test]
fn lb_forbidden_on_x86_allowed_on_bare_tcg() {
    let p = corpus::lb();
    let weak = |b: &Behavior| b.reg(0, A) == 1 && b.reg(1, B) == 1;
    check(&X86Tso::new(), &p, weak, false);
    check(&TcgIr::new(), &p, weak, true);
    check(&Arm::corrected(), &p, weak, true);
}

#[test]
fn iriw_forbidden_on_x86_and_arm() {
    let p = corpus::iriw();
    // Readers disagree about the order of the two independent writes.
    // T2 sees X=1 then Y=0 (X "first"); T3 sees Y=1 then X=0 (Y "first").
    let weak = |b: &Behavior| {
        b.reg(2, A) == 1
            && b.reg(2, B) == 0
            && b.reg(3, C) == 1
            && b.reg(3, risotto_litmus::Reg(3)) == 0
    };
    check(&X86Tso::new(), &p, weak, false);
    // Plain IRIW is allowed on Arm — local read-read reordering explains it.
    check(&Arm::corrected(), &p, weak, true);
    // With DMB FF between the reads, Arm's (other-)multi-copy atomicity
    // forbids the disagreement.
    let fenced = {
        use risotto_memmodel::FenceKind;
        risotto_litmus::Program::builder("IRIW+dmbs")
            .thread(|t| {
                t.store(X, 1);
            })
            .thread(|t| {
                t.store(Y, 1);
            })
            .thread(|t| {
                t.load(A, X).fence(FenceKind::DmbFf).load(B, Y);
            })
            .thread(|t| {
                t.load(C, Y).fence(FenceKind::DmbFf).load(risotto_litmus::Reg(3), X);
            })
            .build()
    };
    check(&Arm::corrected(), &fenced, weak, false);
}

// ---------------------------------------------------------------- §3.2 --

/// MPQ: x86 forbids `a=1 ∧ X=1(final)`; Qemu's Arm translation allows it
/// (translation error); Risotto's verified translation forbids it again.
#[test]
fn mpq_qemu_translation_is_erroneous() {
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.mem_at(X) == 1;
    check(&X86Tso::new(), &corpus::mpq_x86(), weak, false);
    check(&Arm::corrected(), &corpus::mpq_arm_qemu(), weak, true);
    check(&Arm::original(), &corpus::mpq_arm_qemu(), weak, true);
    check(&Arm::corrected(), &corpus::mpq_arm_verified(), weak, false);
}

/// SBQ: x86 forbids `Z=U=1 ∧ a=b=0`; Qemu's RMW2_AL translation allows it.
#[test]
fn sbq_qemu_translation_is_erroneous() {
    let weak =
        |b: &Behavior| b.mem_at(Z) == 1 && b.mem_at(U) == 1 && b.reg(0, A) == 0 && b.reg(1, B) == 0;
    check(&X86Tso::new(), &corpus::sbq_x86(), weak, false);
    check(&Arm::corrected(), &corpus::sbq_arm_qemu(), weak, true);
    // Verified lowering via DMBFF;RMW2;DMBFF: forbidden.
    check(&Arm::corrected(), &corpus::sbq_arm_verified_rmw2(), weak, false);
    // Verified lowering via RMW1_AL: forbidden under the *corrected* model.
    // (Under the *original* model this particular shape is also forbidden —
    // the old `po;[A];amo;[L];po` clause still orders across an RMW that
    // has both po-predecessors and po-successors. The weakness only shows
    // when the RMW opens the thread, which is exactly SBAL, §3.3.)
    check(&Arm::corrected(), &corpus::sbq_arm_verified_casal(), weak, false);
    check(&Arm::original(), &corpus::sbq_arm_verified_casal(), weak, false);
}

/// FMR: the RAW transformation is unsound across an `Fmr` fence.
#[test]
fn fmr_raw_transformation_is_unsound_across_fmr() {
    let outcome = |b: &Behavior| b.reg(0, A) == 2 && b.reg(1, C) == 3;
    check(&TcgIr::new(), &corpus::fmr_source(), outcome, false);
    check(&TcgIr::new(), &corpus::fmr_raw_transformed(), outcome, true);
}

// ---------------------------------------------------------------- §3.3 --

/// SBAL: x86 forbids `X=Y=1 ∧ a=b=0`; the intended Arm-Cats mapping allows
/// it under the original model, and the corrected model (the paper's fix,
/// herdtools PR #322) forbids it.
#[test]
fn sbal_exposes_arm_cats_amo_weakness() {
    let weak =
        |b: &Behavior| b.mem_at(X) == 1 && b.mem_at(Y) == 1 && b.reg(0, A) == 0 && b.reg(1, B) == 0;
    check(&X86Tso::new(), &corpus::sbal_x86(), weak, false);
    check(&Arm::original(), &corpus::sbal_arm_intended(), weak, true);
    check(&Arm::corrected(), &corpus::sbal_arm_intended(), weak, false);
}

// --------------------------------------------------------------- Fig. 8 --

/// LB-IR: the trailing `Frw` fences forbid `a=b=1`; dropping them
/// re-allows it. This is the minimality witness for the trailing fence in
/// the x86→IR load mapping.
#[test]
fn lb_ir_fences_are_necessary_and_sufficient() {
    let weak = |b: &Behavior| b.reg(0, A) == 1 && b.reg(1, B) == 1;
    check(&TcgIr::new(), &corpus::lb_ir(), weak, false);
    check(&TcgIr::new(), &corpus::lb_ir_unfenced(), weak, true);
}

/// MP-IR: `Fww` + `Frr` forbid the MP outcome in the TCG model.
#[test]
fn mp_ir_fences_forbid_mp_outcome() {
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&TcgIr::new(), &corpus::mp_ir(), weak, false);
}

// --------------------------------------------------------------- Fig. 9 --

#[test]
fn fig9_left_dmbff_fences_are_required() {
    // "X=Y=1": both RMWs succeed blindly — they read 0 (observable via the
    // old-value registers) while the sibling plain stores are in flight.
    let weak = |b: &Behavior| b.reg(0, A) == 0 && b.reg(1, B) == 0;
    check(&TcgIr::new(), &corpus::fig9_left_tcg(), weak, false);
    check(&Arm::corrected(), &corpus::fig9_left_arm_fenced(), weak, false);
    check(&Arm::corrected(), &corpus::fig9_left_arm_unfenced(), weak, true);
}

#[test]
fn fig9_right_dmbff_fences_are_required() {
    let weak = |b: &Behavior| b.reg(0, A) == 0 && b.reg(1, B) == 0;
    check(&TcgIr::new(), &corpus::fig9_right_tcg(), weak, false);
    check(&Arm::corrected(), &corpus::fig9_right_arm_fenced(), weak, false);
    check(&Arm::corrected(), &corpus::fig9_right_arm_unfenced(), weak, true);
}

// ----------------------------------------------------------------- §6.1 --

/// Fence merging: `Frm · Fww ↝ Fsc` must not introduce behaviors — the
/// merged program's behaviors are a subset of the source's (here, on an
/// SB-shaped program, both forbid the weak outcome; the merged one is
/// strictly stronger).
#[test]
fn fence_merge_strengthens() {
    let tcg = TcgIr::new();
    let src = behaviors(&corpus::merge_example(), &tcg);
    let dst = behaviors(&corpus::merge_result(), &tcg);
    assert!(dst.is_subset(&src), "merging must only remove behaviors");
    // And the merged Fsc actually forbids the store-load reordering that
    // Frm·Fww alone permits (neither orders R→W… they do: Frm orders R→W.
    // The interesting direction is W→R ordering gained by Fsc).
    let weak = |b: &Behavior| b.reg(0, A) == 1 && b.reg(1, B) == 1;
    assert!(!dst.iter().any(weak));
}

/// Dependencies impose no ordering in the TCG model: the false-dependency
/// program allows the LB outcome, so eliminating the dependency is sound.
#[test]
fn tcg_model_ignores_dependencies() {
    let p = corpus::false_dep();
    // a=X reads 0? The LB-style question: can T0's store be observed while
    // its load reads T1's store? Y = a*0 is always 0 — check final Y.
    let bs = behaviors(&p, &TcgIr::new());
    assert!(bs.iter().all(|b| b.mem_at(Y) == 0));
}

/// Address dependencies DO order loads on Arm: MP+addr-dep forbids the
/// weak outcome on Arm even with only a DMBST on the writer side.
#[test]
fn arm_respects_address_dependencies() {
    let p = corpus::mp_addr_dep();
    let weak = |b: &Behavior| b.reg(1, A) == 1 && b.reg(1, B) == 0;
    check(&Arm::corrected(), &p, weak, false);
}

// ------------------------------------------------------------- sanity ---

/// Model-strength sanity sweep: SC behaviors ⊆ x86 behaviors ⊆ TCG
/// behaviors for every corpus program (weaker models allow more), and the
/// corrected Arm model allows no more than the original.
#[test]
fn model_strength_inclusions_hold_across_corpus() {
    for p in corpus::all() {
        let sc = behaviors(&p, &Sc::new());
        let x86 = behaviors(&p, &X86Tso::new());
        let tcg = behaviors(&p, &TcgIr::new());
        let arm_fixed = behaviors(&p, &Arm::corrected());
        let arm_orig = behaviors(&p, &Arm::original());
        assert!(sc.is_subset(&x86), "{}: SC ⊄ x86", p.name);
        assert!(x86.is_subset(&tcg), "{}: x86 ⊄ TCG", p.name);
        assert!(sc.is_subset(&arm_fixed), "{}: SC ⊄ Arm", p.name);
        assert!(arm_fixed.is_subset(&arm_orig), "{}: corrected Arm ⊄ original Arm", p.name);
        assert!(!sc.is_empty(), "{}: no SC behavior at all", p.name);
    }
}
