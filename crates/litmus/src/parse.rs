//! A herd-inspired textual format for litmus tests.
//!
//! ```text
//! litmus MPQ
//! init X=0 Y=0
//! thread
//!   store X 1
//!   store Y 1
//! thread
//!   a = load Y
//!   if a == 1 {
//!     rmw X 1 2 x86
//!   }
//! exists 1:a=1 /\ X=1
//! ```
//!
//! * Locations are the upper-case names `X Y Z U V W` (more via `L<n>`).
//! * Registers are lower-case identifiers, scoped per thread.
//! * Loads: `r = load X [acq|acqpc]`; stores: `store X <expr> [rel]`.
//! * RMWs: `r = rmw X <expected> <desired> <kind>` (or without `r =`),
//!   kind ∈ `x86 | tcg | casal | cas | lxsx | lxsx_a | lxsx_l | lxsx_al`.
//! * Fences: `fence <mfence|fsc|frr|frw|frm|fww|fwr|fwm|fmr|fmw|fmm|facq|frel|dmbld|dmbst|dmbff>`.
//! * Assignments: `r := <expr>`; expressions: constants, registers, `+`, `^`, `*`.
//! * The `exists` clause conjoins `t:r=v` (thread-register) and `X=v`
//!   (final memory) terms with `/\`.

use crate::enumerate::Behavior;
use crate::program::{Expr, Instr, Program, Reg, RmwKind, Thread};
use risotto_memmodel::{AccessMode, FenceKind, Loc, Val};
use std::collections::BTreeMap;
use std::fmt;

/// The `exists` clause: a conjunction of register and memory equalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeSpec {
    /// `(thread, register, value)` terms.
    pub regs: Vec<(usize, Reg, u64)>,
    /// `(location, value)` final-memory terms.
    pub mem: Vec<(Loc, u64)>,
}

impl OutcomeSpec {
    /// `true` if the behavior satisfies every term.
    pub fn matches(&self, b: &Behavior) -> bool {
        self.regs.iter().all(|&(t, r, v)| b.reg(t, r) == v)
            && self.mem.iter().all(|&(l, v)| b.mem.get(&l) == Some(&v))
    }
}

/// A parsed litmus file: the program plus its `exists` clause.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// The program.
    pub program: Program,
    /// The interesting outcome, if an `exists` clause was given.
    pub exists: Option<OutcomeSpec>,
}

/// Parse errors with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "litmus parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: msg.into() })
}

/// One frame of the `if`-nesting stack: the instructions collected so far
/// plus, when inside an `if`, its header `(reg, eq, finished-then-branch)`.
type IfFrame = (Vec<Instr>, Option<(Reg, u64, Option<Vec<Instr>>)>);

fn parse_loc(tok: &str, line: usize) -> Result<Loc, ParseError> {
    match tok {
        "X" => Ok(Loc(0)),
        "Y" => Ok(Loc(1)),
        "Z" => Ok(Loc(2)),
        "U" => Ok(Loc(3)),
        "V" => Ok(Loc(4)),
        "W" => Ok(Loc(5)),
        _ => {
            if let Some(n) = tok.strip_prefix('L').and_then(|s| s.parse::<u32>().ok()) {
                Ok(Loc(n))
            } else {
                err(line, format!("unknown location `{tok}`"))
            }
        }
    }
}

fn parse_fence(tok: &str, line: usize) -> Result<FenceKind, ParseError> {
    Ok(match tok {
        "mfence" => FenceKind::MFence,
        "fsc" => FenceKind::Fsc,
        "frr" => FenceKind::Frr,
        "frw" => FenceKind::Frw,
        "frm" => FenceKind::Frm,
        "fww" => FenceKind::Fww,
        "fwr" => FenceKind::Fwr,
        "fwm" => FenceKind::Fwm,
        "fmr" => FenceKind::Fmr,
        "fmw" => FenceKind::Fmw,
        "fmm" => FenceKind::Fmm,
        "facq" => FenceKind::Facq,
        "frel" => FenceKind::Frel,
        "dmbld" => FenceKind::DmbLd,
        "dmbst" => FenceKind::DmbSt,
        "dmbff" => FenceKind::DmbFf,
        _ => return err(line, format!("unknown fence `{tok}`")),
    })
}

fn parse_rmw_kind(tok: &str, line: usize) -> Result<RmwKind, ParseError> {
    Ok(match tok {
        "x86" => RmwKind::X86Lock,
        "tcg" => RmwKind::TcgSc,
        "casal" => RmwKind::ArmCasal,
        "cas" => RmwKind::ArmCas,
        "lxsx" => RmwKind::ArmLxsx { acq: false, rel: false },
        "lxsx_a" => RmwKind::ArmLxsx { acq: true, rel: false },
        "lxsx_l" => RmwKind::ArmLxsx { acq: false, rel: true },
        "lxsx_al" => RmwKind::ArmLxsx { acq: true, rel: true },
        _ => return err(line, format!("unknown rmw kind `{tok}`")),
    })
}

/// Per-thread register namespace.
#[derive(Debug, Default)]
struct RegScope {
    names: BTreeMap<String, Reg>,
}

impl RegScope {
    fn get(&mut self, name: &str) -> Reg {
        let next = Reg(self.names.len() as u32);
        *self.names.entry(name.to_owned()).or_insert(next)
    }

    fn lookup(&self, name: &str) -> Option<Reg> {
        self.names.get(name).copied()
    }
}

fn parse_expr(tokens: &[&str], scope: &mut RegScope, line: usize) -> Result<Expr, ParseError> {
    // Tiny infix grammar, left-associative, single precedence level —
    // litmus expressions are things like `a + 1` or `a ^ a`.
    if tokens.is_empty() {
        return err(line, "empty expression");
    }
    let atom = |tok: &str, scope: &mut RegScope| -> Result<Expr, ParseError> {
        if let Ok(v) = tok.parse::<u64>() {
            Ok(Expr::Const(v))
        } else if tok.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()) {
            Ok(Expr::Reg(scope.get(tok)))
        } else {
            err(line, format!("bad expression atom `{tok}`"))
        }
    };
    let mut acc = atom(tokens[0], scope)?;
    let mut i = 1;
    while i + 1 < tokens.len() + 1 && i < tokens.len() {
        let op = tokens[i];
        let rhs = atom(
            tokens
                .get(i + 1)
                .ok_or(ParseError { line, message: "expression ends with an operator".into() })?,
            scope,
        )?;
        acc = match op {
            "+" => Expr::Add(Box::new(acc), Box::new(rhs)),
            "^" => Expr::Xor(Box::new(acc), Box::new(rhs)),
            "*" => Expr::Mul(Box::new(acc), Box::new(rhs)),
            _ => return err(line, format!("unknown operator `{op}`")),
        };
        i += 2;
    }
    Ok(acc)
}

/// Parses litmus text.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line.
pub fn parse_litmus(text: &str) -> Result<LitmusTest, ParseError> {
    let mut name = String::from("unnamed");
    let mut init: BTreeMap<Loc, Val> = BTreeMap::new();
    let mut threads: Vec<Thread> = Vec::new();
    let mut scopes: Vec<RegScope> = Vec::new();
    let mut exists: Option<OutcomeSpec> = None;
    // Stack of instruction sinks for nested `if` bodies:
    // (instrs, Some((reg, eq, then_done)) when inside an if).
    let mut stack: Vec<IfFrame> = Vec::new();

    fn close_thread(
        threads: &mut Vec<Thread>,
        stack: &mut Vec<IfFrame>,
        line: usize,
    ) -> Result<(), ParseError> {
        if stack.len() > 1 {
            return err(line, "unclosed `if` block");
        }
        if let Some((instrs, _)) = stack.pop() {
            threads.push(Thread { instrs });
        }
        Ok(())
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let toks: Vec<&str> = stripped.split_whitespace().collect();
        match toks[0] {
            "litmus" => {
                name = toks.get(1).unwrap_or(&"unnamed").to_string();
            }
            "init" => {
                for t in &toks[1..] {
                    let (l, v) = t
                        .split_once('=')
                        .ok_or(ParseError { line, message: format!("bad init `{t}`") })?;
                    let loc = parse_loc(l, line)?;
                    let val = v
                        .parse::<u64>()
                        .map_err(|_| ParseError { line, message: format!("bad value `{v}`") })?;
                    init.insert(loc, Val(val));
                }
            }
            "thread" => {
                close_thread(&mut threads, &mut stack, line)?;
                stack.push((Vec::new(), None));
                scopes.push(RegScope::default());
            }
            "exists" => {
                close_thread(&mut threads, &mut stack, line)?;
                let clause = stripped.trim_start_matches("exists").trim();
                let mut spec = OutcomeSpec::default();
                for term in clause.split("/\\") {
                    let term = term.trim();
                    let (lhs, rhs) = term
                        .split_once('=')
                        .ok_or(ParseError { line, message: format!("bad term `{term}`") })?;
                    let v = rhs.trim().parse::<u64>().map_err(|_| ParseError {
                        line,
                        message: format!("bad value in `{term}`"),
                    })?;
                    let lhs = lhs.trim();
                    if let Some((t, r)) = lhs.split_once(':') {
                        let tid = t.parse::<usize>().map_err(|_| ParseError {
                            line,
                            message: format!("bad thread id in `{term}`"),
                        })?;
                        let scope = scopes
                            .get(tid)
                            .ok_or(ParseError { line, message: format!("no thread {tid}") })?;
                        let reg = scope.lookup(r).ok_or(ParseError {
                            line,
                            message: format!("thread {tid} has no register `{r}`"),
                        })?;
                        spec.regs.push((tid, reg, v));
                    } else {
                        spec.mem.push((parse_loc(lhs, line)?, v));
                    }
                }
                exists = Some(spec);
            }
            _ => {
                // Instruction line within the current thread.
                let scope = scopes
                    .last_mut()
                    .ok_or(ParseError { line, message: "instruction before `thread`".into() })?;
                let instr = parse_instr(&toks, scope, line, &mut stack)?;
                if let Some(i) = instr {
                    stack
                        .last_mut()
                        .ok_or(ParseError { line, message: "instruction outside thread".into() })?
                        .0
                        .push(i);
                }
            }
        }
    }
    close_thread(&mut threads, &mut stack, text.lines().count())?;
    Ok(LitmusTest { program: Program { name, init, threads }, exists })
}

fn parse_instr(
    toks: &[&str],
    scope: &mut RegScope,
    line: usize,
    stack: &mut Vec<IfFrame>,
) -> Result<Option<Instr>, ParseError> {
    match toks {
        ["store", loc, rest @ ..] => {
            let (expr_toks, mode) = match rest.split_last() {
                Some((&"rel", head)) if !head.is_empty() => (head, AccessMode::Release),
                _ => (rest, AccessMode::Plain),
            };
            let val = parse_expr(expr_toks, scope, line)?;
            Ok(Some(Instr::Store { loc: parse_loc(loc, line)?.into(), val, mode }))
        }
        [dst, "=", "load", loc, rest @ ..] => {
            let mode = match rest {
                ["acq"] => AccessMode::Acquire,
                ["acqpc"] => AccessMode::AcquirePc,
                [] => AccessMode::Plain,
                other => return err(line, format!("bad load suffix {other:?}")),
            };
            Ok(Some(Instr::Load { dst: scope.get(dst), loc: parse_loc(loc, line)?.into(), mode }))
        }
        [dst, "=", "rmw", loc, expected, desired, kind] => Ok(Some(Instr::Rmw {
            dst: Some(scope.get(dst)),
            loc: parse_loc(loc, line)?.into(),
            expected: parse_expr(&[expected], scope, line)?,
            desired: parse_expr(&[desired], scope, line)?,
            kind: parse_rmw_kind(kind, line)?,
        })),
        ["rmw", loc, expected, desired, kind] => Ok(Some(Instr::Rmw {
            dst: None,
            loc: parse_loc(loc, line)?.into(),
            expected: parse_expr(&[expected], scope, line)?,
            desired: parse_expr(&[desired], scope, line)?,
            kind: parse_rmw_kind(kind, line)?,
        })),
        ["fence", kind] => Ok(Some(Instr::Fence(parse_fence(kind, line)?))),
        [dst, ":=", rest @ ..] => {
            Ok(Some(Instr::Let { dst: scope.get(dst), val: parse_expr(rest, scope, line)? }))
        }
        ["if", reg, "==", val, "{"] => {
            let r = scope
                .lookup(reg)
                .ok_or(ParseError { line, message: format!("unknown register `{reg}`") })?;
            let v = val
                .parse::<u64>()
                .map_err(|_| ParseError { line, message: format!("bad value `{val}`") })?;
            stack.push((Vec::new(), Some((r, v, None))));
            Ok(None)
        }
        ["}", "else", "{"] => {
            let (then_body, hdr) =
                stack.pop().ok_or(ParseError { line, message: "stray `} else {`".into() })?;
            match hdr {
                Some((r, v, None)) => {
                    stack.push((Vec::new(), Some((r, v, Some(then_body)))));
                    Ok(None)
                }
                _ => err(line, "`} else {` without a matching `if`"),
            }
        }
        ["}"] => {
            let (body, hdr) =
                stack.pop().ok_or(ParseError { line, message: "stray `}`".into() })?;
            match hdr {
                Some((r, v, None)) => {
                    Ok(Some(Instr::If { reg: r, eq: v, then: body, els: Vec::new() }))
                }
                Some((r, v, Some(then_body))) => {
                    Ok(Some(Instr::If { reg: r, eq: v, then: then_body, els: body }))
                }
                None => err(line, "`}` without a matching `if`"),
            }
        }
        other => err(line, format!("cannot parse instruction {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::allows;
    use risotto_memmodel::{Arm, X86Tso};

    #[test]
    fn parses_and_decides_mpq() {
        let test = parse_litmus(
            "
litmus MPQ
init X=0 Y=0
thread
  store X 1
  store Y 1
thread
  a = load Y
  if a == 1 {
    rmw X 1 2 x86
  }
exists 1:a=1 /\\ X=1
",
        )
        .unwrap();
        assert_eq!(test.program.name, "MPQ");
        assert_eq!(test.program.threads.len(), 2);
        let spec = test.exists.unwrap();
        // x86 forbids the outcome — same verdict as the hand-built corpus.
        assert!(!allows(&test.program, &X86Tso::new(), |b| spec.matches(b)));
    }

    #[test]
    fn parses_arm_flavour_with_modes() {
        let test = parse_litmus(
            "
litmus MP+rel-acq
thread
  store X 1
  store Y 1 rel
thread
  a = load Y acq
  b = load X
exists 1:a=1 /\\ 1:b=0
",
        )
        .unwrap();
        let spec = test.exists.clone().unwrap();
        assert!(!allows(&test.program, &Arm::corrected(), |b| spec.matches(b)));
    }

    #[test]
    fn parses_fences_else_and_expressions() {
        let t = parse_litmus(
            "
litmus misc
thread
  a = load X
  fence frm
  b := a + 1
  if a == 0 {
    store Y b
  } else {
    store Y 9
  }
  fence dmbff
",
        )
        .unwrap();
        let instrs = &t.program.threads[0].instrs;
        assert!(matches!(instrs[1], Instr::Fence(FenceKind::Frm)));
        assert!(matches!(instrs[2], Instr::Let { .. }));
        match &instrs[3] {
            Instr::If { then, els, .. } => {
                assert_eq!(then.len(), 1);
                assert_eq!(els.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
        assert!(matches!(instrs[4], Instr::Fence(FenceKind::DmbFf)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_litmus("litmus x\nthread\n  bogus line\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_litmus("litmus x\nthread\n  a = load X\n  if a == 1 {\n").unwrap_err();
        assert!(e.message.contains("unclosed"));
        let e = parse_litmus("litmus x\nthread\n  store Q 1\n").unwrap_err();
        assert!(e.message.contains("unknown location"));
    }

    #[test]
    fn textual_sbal_matches_corpus_verdicts() {
        let test = parse_litmus(
            "
litmus SBAL
thread
  a = rmw X 0 1 casal
  c = load Y acqpc
thread
  b = rmw Y 0 1 casal
  d = load X acqpc
exists X=1 /\\ Y=1 /\\ 0:c=0 /\\ 1:d=0
",
        )
        .unwrap();
        let spec = test.exists.unwrap();
        assert!(allows(&test.program, &Arm::original(), |b| spec.matches(b)));
        assert!(!allows(&test.program, &Arm::corrected(), |b| spec.matches(b)));
    }
}
