//! Per-thread symbolic elaboration.
//!
//! Candidate-execution enumeration (herd-style) first *elaborates* each
//! thread in isolation: every load is given every value the location could
//! possibly hold, and every CAS succeeds or fails accordingly. The result is
//! the set of per-thread event traces; the enumerator then combines traces
//! across threads and searches for `rf`/`co` assignments that justify the
//! guessed values.
//!
//! Elaboration also records syntactic dependencies (address, data, control)
//! which the Arm model's `dob` consumes.

use crate::program::{Expr, Instr, LocSpec, Program, Reg, Thread};
use risotto_memmodel::{EventKind, FenceKind, Loc, RmwTag, Val};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on how many distinct values a location may take during the
/// potential-value fixpoint; litmus tests stay far below this.
const MAX_VALUES_PER_LOC: usize = 32;

/// Computes, per location, a superset of the values it can ever hold.
///
/// The set is a fixpoint over abstract register/location value sets: loads
/// propagate location values into registers, stores and RMW updates
/// propagate expression values into locations. Complete by construction
/// (every concrete run's value is covered); precision is recovered later by
/// `rf` matching.
///
/// # Panics
///
/// Panics if a location's value set exceeds an internal cap (32), which
/// indicates a program far beyond litmus size.
pub fn potential_values(prog: &Program) -> BTreeMap<Loc, BTreeSet<u64>> {
    let mut locs: BTreeMap<Loc, BTreeSet<u64>> = BTreeMap::new();
    for loc in prog.locations() {
        locs.entry(loc).or_default().insert(prog.init_val(loc).0);
    }
    // Abstract register environment per thread.
    let mut regs: Vec<BTreeMap<Reg, BTreeSet<u64>>> = vec![BTreeMap::new(); prog.threads.len()];

    fn eval_set(e: &Expr, regs: &BTreeMap<Reg, BTreeSet<u64>>) -> BTreeSet<u64> {
        match e {
            Expr::Const(c) => [*c].into(),
            Expr::Reg(r) => regs.get(r).cloned().unwrap_or_else(|| [0].into()),
            Expr::Add(a, b) | Expr::Xor(a, b) | Expr::Mul(a, b) => {
                let sa = eval_set(a, regs);
                let sb = eval_set(b, regs);
                let mut out = BTreeSet::new();
                for &x in &sa {
                    for &y in &sb {
                        out.insert(match e {
                            Expr::Add(..) => x.wrapping_add(y),
                            Expr::Xor(..) => x ^ y,
                            _ => x.wrapping_mul(y),
                        });
                    }
                }
                out
            }
        }
    }

    fn walk(
        instrs: &[Instr],
        regs: &mut BTreeMap<Reg, BTreeSet<u64>>,
        locs: &mut BTreeMap<Loc, BTreeSet<u64>>,
        changed: &mut bool,
    ) {
        for i in instrs {
            match i {
                Instr::Load { dst, loc, .. } => {
                    let vals = locs.entry(loc.loc()).or_default().clone();
                    let slot = regs.entry(*dst).or_default();
                    for v in vals {
                        *changed |= slot.insert(v);
                    }
                }
                Instr::Store { loc, val, .. } => {
                    let vals = eval_set(val, regs);
                    let slot = locs.entry(loc.loc()).or_default();
                    for v in vals {
                        *changed |= slot.insert(v);
                    }
                    assert!(slot.len() <= MAX_VALUES_PER_LOC, "value set explosion");
                }
                Instr::Rmw { dst, loc, desired, .. } => {
                    let read_vals = locs.entry(loc.loc()).or_default().clone();
                    if let Some(d) = dst {
                        let slot = regs.entry(*d).or_default();
                        for v in read_vals {
                            *changed |= slot.insert(v);
                        }
                    }
                    let vals = eval_set(desired, regs);
                    let slot = locs.entry(loc.loc()).or_default();
                    for v in vals {
                        *changed |= slot.insert(v);
                    }
                    assert!(slot.len() <= MAX_VALUES_PER_LOC, "value set explosion");
                }
                Instr::Fence(_) => {}
                Instr::Let { dst, val } => {
                    let vals = eval_set(val, regs);
                    let slot = regs.entry(*dst).or_default();
                    for v in vals {
                        *changed |= slot.insert(v);
                    }
                }
                Instr::If { then, els, .. } => {
                    // Both branches contribute to the abstraction.
                    walk(then, regs, locs, changed);
                    walk(els, regs, locs, changed);
                }
            }
        }
    }

    loop {
        let mut changed = false;
        for (tid, t) in prog.threads.iter().enumerate() {
            walk(&t.instrs, &mut regs[tid], &mut locs, &mut changed);
        }
        if !changed {
            return locs;
        }
    }
}

/// One event of a thread trace, with local (per-thread) indices.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// What the event does.
    pub kind: EventKind,
    /// Local indices of reads this event's address depends on.
    pub addr_deps: Vec<usize>,
    /// Local indices of reads this event's data depends on.
    pub data_deps: Vec<usize>,
    /// Local indices of reads this event is control-dependent on.
    pub ctrl_deps: Vec<usize>,
}

/// An RMW pairing within a trace, by local indices.
#[derive(Debug, Clone, Copy)]
pub struct TraceRmw {
    /// Local index of the read event.
    pub read: usize,
    /// Local index of the write event (`None`: failed CAS).
    pub write: Option<usize>,
    /// The rmw tag.
    pub tag: RmwTag,
}

/// A fully elaborated thread run.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// The events, in program order.
    pub events: Vec<TraceEvent>,
    /// RMW pairings.
    pub rmws: Vec<TraceRmw>,
    /// Final register valuation.
    pub regs: BTreeMap<Reg, u64>,
}

struct ElabState {
    trace: ThreadTrace,
    /// Which read events each register's current value derives from.
    reg_deps: BTreeMap<Reg, Vec<usize>>,
    /// Reads controlling everything from here on.
    ctrl: Vec<usize>,
}

impl Clone for ElabState {
    fn clone(&self) -> Self {
        ElabState {
            trace: self.trace.clone(),
            reg_deps: self.reg_deps.clone(),
            ctrl: self.ctrl.clone(),
        }
    }
}

/// Elaborates one thread into all of its possible traces.
pub fn elaborate_thread(
    thread: &Thread,
    potential: &BTreeMap<Loc, BTreeSet<u64>>,
) -> Vec<ThreadTrace> {
    let init =
        ElabState { trace: ThreadTrace::default(), reg_deps: BTreeMap::new(), ctrl: Vec::new() };
    let states = elab_instrs(&thread.instrs, vec![init], potential);
    states.into_iter().map(|s| s.trace).collect()
}

fn expr_deps(e: &Expr, reg_deps: &BTreeMap<Reg, Vec<usize>>) -> Vec<usize> {
    let mut out = Vec::new();
    for r in e.regs() {
        if let Some(d) = reg_deps.get(&r) {
            out.extend_from_slice(d);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn loc_deps(l: &LocSpec, reg_deps: &BTreeMap<Reg, Vec<usize>>) -> Vec<usize> {
    match l {
        LocSpec::Direct(_) => Vec::new(),
        LocSpec::Dep { via, .. } => reg_deps.get(via).cloned().unwrap_or_default(),
    }
}

fn elab_instrs(
    instrs: &[Instr],
    mut states: Vec<ElabState>,
    potential: &BTreeMap<Loc, BTreeSet<u64>>,
) -> Vec<ElabState> {
    for i in instrs {
        let mut next = Vec::new();
        for st in states {
            match i {
                Instr::Load { dst, loc, mode } => {
                    let l = loc.loc();
                    let vals = potential.get(&l).cloned().unwrap_or_else(|| [0].into());
                    for v in vals {
                        let mut s = st.clone();
                        let idx = s.trace.events.len();
                        s.trace.events.push(TraceEvent {
                            kind: EventKind::Read { loc: l, val: Val(v), mode: *mode },
                            addr_deps: loc_deps(loc, &s.reg_deps),
                            data_deps: Vec::new(),
                            ctrl_deps: s.ctrl.clone(),
                        });
                        s.trace.regs.insert(*dst, v);
                        s.reg_deps.insert(*dst, vec![idx]);
                        next.push(s);
                    }
                }
                Instr::Store { loc, val, mode } => {
                    let mut s = st;
                    let v = val.eval(&s.trace.regs);
                    s.trace.events.push(TraceEvent {
                        kind: EventKind::Write { loc: loc.loc(), val: Val(v), mode: *mode },
                        addr_deps: loc_deps(loc, &s.reg_deps),
                        data_deps: expr_deps(val, &s.reg_deps),
                        ctrl_deps: s.ctrl.clone(),
                    });
                    next.push(s);
                }
                Instr::Fence(kind) => {
                    let mut s = st;
                    s.trace.events.push(TraceEvent {
                        kind: EventKind::Fence(*kind),
                        addr_deps: Vec::new(),
                        data_deps: Vec::new(),
                        ctrl_deps: s.ctrl.clone(),
                    });
                    next.push(s);
                }
                Instr::Rmw { dst, loc, expected, desired, kind } => {
                    let l = loc.loc();
                    let expect_v = expected.eval(&st.trace.regs);
                    let vals = potential.get(&l).cloned().unwrap_or_else(|| [0].into());
                    for v in vals {
                        let mut s = st.clone();
                        let ridx = s.trace.events.len();
                        s.trace.events.push(TraceEvent {
                            kind: EventKind::Read { loc: l, val: Val(v), mode: kind.read_mode() },
                            addr_deps: loc_deps(loc, &s.reg_deps),
                            data_deps: Vec::new(),
                            ctrl_deps: s.ctrl.clone(),
                        });
                        let success = v == expect_v;
                        let widx = if success {
                            let wv = desired.eval(&s.trace.regs);
                            let widx = s.trace.events.len();
                            let mut data = expr_deps(desired, &s.reg_deps);
                            data.extend(expr_deps(expected, &s.reg_deps));
                            data.sort_unstable();
                            data.dedup();
                            s.trace.events.push(TraceEvent {
                                kind: EventKind::Write {
                                    loc: l,
                                    val: Val(wv),
                                    mode: kind.write_mode(),
                                },
                                addr_deps: loc_deps(loc, &s.reg_deps),
                                data_deps: data,
                                ctrl_deps: s.ctrl.clone(),
                            });
                            Some(widx)
                        } else {
                            None
                        };
                        s.trace.rmws.push(TraceRmw { read: ridx, write: widx, tag: kind.tag() });
                        if let Some(d) = dst {
                            s.trace.regs.insert(*d, v);
                            s.reg_deps.insert(*d, vec![ridx]);
                        }
                        // An exclusive-pair RMW ends with a conditional
                        // branch on the store-exclusive status / comparison,
                        // so everything after is control-dependent on the
                        // exclusive read.
                        if kind.is_lxsx() {
                            s.ctrl.push(ridx);
                        }
                        next.push(s);
                    }
                }
                Instr::Let { dst, val } => {
                    let mut s = st;
                    let v = val.eval(&s.trace.regs);
                    let deps = expr_deps(val, &s.reg_deps);
                    s.trace.regs.insert(*dst, v);
                    s.reg_deps.insert(*dst, deps);
                    next.push(s);
                }
                Instr::If { reg, eq, then, els } => {
                    let cond_deps = st.reg_deps.get(reg).cloned().unwrap_or_default();
                    let taken = st.trace.regs.get(reg).copied().unwrap_or(0) == *eq;
                    let mut s = st;
                    // ctrl extends over the branch body *and* everything
                    // after the join.
                    s.ctrl.extend(cond_deps);
                    s.ctrl.sort_unstable();
                    s.ctrl.dedup();
                    let body = if taken { then } else { els };
                    let sub = elab_instrs(body, vec![s], potential);
                    next.extend(sub);
                }
            }
        }
        states = next;
    }
    states
}

/// Elaborates every thread of a program.
pub fn elaborate_program(prog: &Program) -> Vec<Vec<ThreadTrace>> {
    let potential = potential_values(prog);
    prog.threads.iter().map(|t| elaborate_thread(t, &potential)).collect()
}

/// Well-known fence shorthand used across the corpus: the TCG `Frm` fence
/// the verified mapping emits after loads.
pub const TRAILING_LOAD_FENCE: FenceKind = FenceKind::Frm;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, RmwKind};
    use risotto_memmodel::{AccessMode, Loc};

    const X: Loc = Loc(0);
    const Y: Loc = Loc(1);
    const R0: Reg = Reg(0);
    const R1: Reg = Reg(1);

    #[test]
    fn potential_values_fixpoint() {
        // T0: X = 1; T1: r0 = X; Y = r0 + 1.
        let p = Program::builder("t")
            .thread(|t| {
                t.store(X, 1);
            })
            .thread(|t| {
                t.load(R0, X);
                t.store(Y, Expr::Add(Box::new(Expr::Reg(R0)), Box::new(Expr::Const(1))));
            })
            .build();
        let pv = potential_values(&p);
        assert_eq!(pv[&X], [0, 1].into());
        assert_eq!(pv[&Y], [0, 1, 2].into());
    }

    #[test]
    fn load_branches_per_value() {
        let p = Program::builder("t")
            .thread(|t| {
                t.store(X, 1);
            })
            .thread(|t| {
                t.load(R0, X).load(R1, X);
            })
            .build();
        let traces = elaborate_program(&p);
        assert_eq!(traces[0].len(), 1);
        assert_eq!(traces[1].len(), 4); // 2 values × 2 loads
    }

    #[test]
    fn cas_success_and_failure_traces() {
        let p = Program::builder("t")
            .thread(|t| {
                t.store(X, 1);
            })
            .thread(|t| {
                t.rmw_into(R0, X, 0u64, 5u64, RmwKind::ArmCasal);
            })
            .build();
        let traces = elaborate_program(&p);
        let t1 = &traces[1];
        // X ∈ {0, 1, 5}: reads 0 (success), 1, 5 (failures).
        assert_eq!(t1.len(), 3);
        let successes: Vec<_> = t1.iter().filter(|t| t.rmws[0].write.is_some()).collect();
        assert_eq!(successes.len(), 1);
        assert_eq!(successes[0].events.len(), 2);
        assert_eq!(successes[0].regs[&R0], 0);
        let failures: Vec<_> = t1.iter().filter(|t| t.rmws[0].write.is_none()).collect();
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().all(|t| t.events.len() == 1));
    }

    #[test]
    fn control_dependencies_extend_past_join() {
        // r0 = X; if (r0 == 1) { Y = 1 }; Y = 2  — both stores ctrl-dep on the load.
        let p = Program::builder("t")
            .thread(|t| {
                t.store(X, 1);
            })
            .thread(|t| {
                t.load(R0, X);
                t.if_eq(R0, 1, |b| {
                    b.store(Y, 1);
                });
                t.store(Y, 2);
            })
            .build();
        let traces = elaborate_program(&p);
        let taken: Vec<_> = traces[1].iter().filter(|t| t.events.len() == 3).collect();
        assert_eq!(taken.len(), 1);
        let t = taken[0];
        assert_eq!(t.events[1].ctrl_deps, vec![0]);
        assert_eq!(t.events[2].ctrl_deps, vec![0]);
        let untaken: Vec<_> = traces[1].iter().filter(|t| t.events.len() == 2).collect();
        assert_eq!(untaken.len(), 1);
        // The post-join store is ctrl-dependent even on the untaken path.
        assert_eq!(untaken[0].events[1].ctrl_deps, vec![0]);
    }

    #[test]
    fn data_and_addr_dependencies() {
        let p = Program::builder("t")
            .thread(|t| {
                t.load(R0, X);
                t.store(LocSpec::Dep { loc: Y, via: R0 }, Expr::Reg(R0));
            })
            .build();
        let traces = elaborate_program(&p);
        for tr in &traces[0] {
            assert_eq!(tr.events[1].addr_deps, vec![0]);
            assert_eq!(tr.events[1].data_deps, vec![0]);
        }
    }

    #[test]
    fn acquire_mode_propagates() {
        let p = Program::builder("t")
            .thread(|t| {
                t.load_mode(R0, X, AccessMode::AcquirePc);
            })
            .build();
        let traces = elaborate_program(&p);
        match traces[0][0].events[0].kind {
            EventKind::Read { mode, .. } => assert_eq!(mode, AccessMode::AcquirePc),
            _ => panic!("expected read"),
        }
    }
}
