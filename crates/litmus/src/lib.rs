//! # risotto-litmus
//!
//! Litmus-test infrastructure: a small program DSL, symbolic per-thread
//! elaboration, and exhaustive (herd-style) candidate-execution
//! enumeration against the models of `risotto-memmodel`.
//!
//! A litmus [`Program`] is an initialization of shared locations followed
//! by a parallel composition of threads built from the concurrency
//! primitives of the paper's Fig. 1 — loads/stores with optional
//! acquire/release/SC annotations, CAS-style RMWs in every flavour
//! (`LOCK CMPXCHG`, TCG `RMW`, Arm `CAS`/`CASAL`/`LDXR-STXR`), the full
//! fence alphabet, plus conditionals and register assignments.
//!
//! ## Example — the MP test of §2.1
//!
//! ```
//! use risotto_litmus::{allows, corpus, Behavior};
//! use risotto_memmodel::{Arm, X86Tso};
//!
//! let mp = corpus::mp();
//! let weak = |b: &Behavior| b.reg(1, corpus::A) == 1 && b.reg(1, corpus::B) == 0;
//! // Allowed on Arm, disallowed on x86 — exactly the paper's table.
//! assert!(allows(&mp, &Arm::corrected(), weak));
//! assert!(!allows(&mp, &X86Tso::new(), weak));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod elaborate;
mod enumerate;
mod parse;
mod program;

pub use enumerate::{allows, behaviors, for_each_consistent, Behavior};
pub use parse::{parse_litmus, LitmusTest, OutcomeSpec, ParseError};
pub use program::{
    Expr, Instr, LocSpec, Program, ProgramBuilder, Reg, RmwKind, Thread, ThreadBuilder,
};
