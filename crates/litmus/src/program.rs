//! Litmus programs: small multi-threaded programs over shared locations.
//!
//! A [`Program`] is an initialization of shared memory followed by a
//! parallel composition of threads (paper, §5.1). Instructions cover the
//! concurrency primitives of Fig. 1 across all three ISAs: plain and
//! synchronizing loads/stores, CAS-style RMWs in every flavour the paper
//! distinguishes (`LOCK CMPXCHG`, TCG `RMW`, Arm `RMW1`/`RMW2` with
//! acquire/release combinations), and the full fence alphabet.

use risotto_memmodel::{AccessMode, FenceKind, Loc, Val};
use std::collections::BTreeMap;
use std::fmt;

/// A thread-local register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

/// Value expressions over constants and registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(u64),
    /// A register read.
    Reg(Reg),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Exclusive-or — used by litmus idioms like `r ⊕ r` to build
    /// artificial (false) dependencies.
    Xor(Box<Expr>, Box<Expr>),
    /// Multiplication — `r * 0` is the paper's false-dependency example
    /// (§6.1).
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates under a register valuation.
    pub fn eval(&self, regs: &BTreeMap<Reg, u64>) -> u64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Reg(r) => *regs.get(r).unwrap_or(&0),
            Expr::Add(a, b) => a.eval(regs).wrapping_add(b.eval(regs)),
            Expr::Xor(a, b) => a.eval(regs) ^ b.eval(regs),
            Expr::Mul(a, b) => a.eval(regs).wrapping_mul(b.eval(regs)),
        }
    }

    /// Registers appearing in the expression.
    pub fn regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        self.collect_regs(&mut out);
        out
    }

    fn collect_regs(&self, out: &mut Vec<Reg>) {
        match self {
            Expr::Const(_) => {}
            Expr::Reg(r) => out.push(*r),
            Expr::Add(a, b) | Expr::Xor(a, b) | Expr::Mul(a, b) => {
                a.collect_regs(out);
                b.collect_regs(out);
            }
        }
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Expr {
        Expr::Const(v)
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Expr {
        Expr::Reg(r)
    }
}

/// How a memory access names its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocSpec {
    /// A direct location.
    Direct(Loc),
    /// The same location, but computed through `via` (e.g.
    /// `X[r ⊕ r]`) — creating an *address dependency* on the read that
    /// produced `via` without changing the address.
    Dep {
        /// The effective location.
        loc: Loc,
        /// The register the address formally depends on.
        via: Reg,
    },
}

impl LocSpec {
    /// The effective location.
    pub fn loc(self) -> Loc {
        match self {
            LocSpec::Direct(l) | LocSpec::Dep { loc: l, .. } => l,
        }
    }
}

impl From<Loc> for LocSpec {
    fn from(l: Loc) -> LocSpec {
        LocSpec::Direct(l)
    }
}

/// The RMW flavours of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwKind {
    /// x86 `LOCK CMPXCHG`: acts as a full fence when successful.
    X86Lock,
    /// TCG IR `RMW`: SC semantics (`Rsc`/`Wsc` events).
    TcgSc,
    /// Arm `RMW1_AL` (`casal`): acquire read, release write, `amo` tag.
    ArmCasal,
    /// Arm plain `RMW1` (`cas`): no ordering annotations.
    ArmCas,
    /// Arm `RMW2` — an `LDXR`/`STXR` loop, optionally acquire/release
    /// (`LDAXR`/`STLXR`), `lxsx` tag.
    ArmLxsx {
        /// Use `LDAXR` (acquire) for the load-exclusive.
        acq: bool,
        /// Use `STLXR` (release) for the store-exclusive.
        rel: bool,
    },
}

impl RmwKind {
    /// Access mode of the read event.
    pub fn read_mode(self) -> AccessMode {
        match self {
            RmwKind::X86Lock | RmwKind::ArmCas => AccessMode::Plain,
            RmwKind::TcgSc => AccessMode::Sc,
            RmwKind::ArmCasal => AccessMode::Acquire,
            RmwKind::ArmLxsx { acq, .. } => {
                if acq {
                    AccessMode::Acquire
                } else {
                    AccessMode::Plain
                }
            }
        }
    }

    /// Access mode of the write event.
    pub fn write_mode(self) -> AccessMode {
        match self {
            RmwKind::X86Lock | RmwKind::ArmCas => AccessMode::Plain,
            RmwKind::TcgSc => AccessMode::Sc,
            RmwKind::ArmCasal => AccessMode::Release,
            RmwKind::ArmLxsx { rel, .. } => {
                if rel {
                    AccessMode::Release
                } else {
                    AccessMode::Plain
                }
            }
        }
    }

    /// The `rmw` tag for the pair.
    pub fn tag(self) -> risotto_memmodel::RmwTag {
        match self {
            RmwKind::X86Lock => risotto_memmodel::RmwTag::X86,
            RmwKind::TcgSc => risotto_memmodel::RmwTag::Tcg,
            RmwKind::ArmCasal | RmwKind::ArmCas => risotto_memmodel::RmwTag::Amo,
            RmwKind::ArmLxsx { .. } => risotto_memmodel::RmwTag::Lxsx,
        }
    }

    /// `true` for the exclusive-pair flavour, whose conditional-branch loop
    /// induces a control dependency on everything that follows.
    pub fn is_lxsx(self) -> bool {
        matches!(self, RmwKind::ArmLxsx { .. })
    }
}

/// One instruction of a litmus thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = *loc`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Location (possibly with an artificial address dependency).
        loc: LocSpec,
        /// Ordering annotation.
        mode: AccessMode,
    },
    /// `*loc = val`.
    Store {
        /// Location.
        loc: LocSpec,
        /// Stored value.
        val: Expr,
        /// Ordering annotation.
        mode: AccessMode,
    },
    /// Compare-and-swap: atomically, if `*loc == expected` then
    /// `*loc = desired`. `dst` (if any) receives the value read.
    Rmw {
        /// Receives the old value.
        dst: Option<Reg>,
        /// Location.
        loc: LocSpec,
        /// Expected (compare) value.
        expected: Expr,
        /// Desired (swap-in) value.
        desired: Expr,
        /// Which primitive realizes the RMW.
        kind: RmwKind,
    },
    /// A memory fence.
    Fence(FenceKind),
    /// `dst := val` — a thread-local assignment generating no event.
    ///
    /// Produced by the elimination transformations (§5.4): e.g. RAW rewrites
    /// `Y = 2; a = Y` into `Y = 2; a := 2`.
    Let {
        /// Destination register.
        dst: Reg,
        /// Assigned expression.
        val: Expr,
    },
    /// `if (reg == eq) { then } else { els }`.
    If {
        /// Condition register.
        reg: Reg,
        /// Compared constant.
        eq: u64,
        /// Taken when equal.
        then: Vec<Instr>,
        /// Taken when not equal.
        els: Vec<Instr>,
    },
}

/// A single litmus thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Thread {
    /// The instruction sequence.
    pub instrs: Vec<Instr>,
}

/// A litmus program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Test name, e.g. `"MPQ"`.
    pub name: String,
    /// Initial values; locations not listed start at 0.
    pub init: BTreeMap<Loc, Val>,
    /// The threads.
    pub threads: Vec<Thread>,
}

impl Program {
    /// Starts a builder.
    pub fn builder(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            prog: Program { name: name.to_owned(), init: BTreeMap::new(), threads: Vec::new() },
        }
    }

    /// Every location mentioned anywhere in the program.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> = self.init.keys().copied().collect();
        fn walk(instrs: &[Instr], locs: &mut Vec<Loc>) {
            for i in instrs {
                match i {
                    Instr::Load { loc, .. } | Instr::Store { loc, .. } | Instr::Rmw { loc, .. } => {
                        locs.push(loc.loc())
                    }
                    Instr::Fence(_) | Instr::Let { .. } => {}
                    Instr::If { then, els, .. } => {
                        walk(then, locs);
                        walk(els, locs);
                    }
                }
            }
        }
        for t in &self.threads {
            walk(&t.instrs, &mut locs);
        }
        locs.sort();
        locs.dedup();
        locs
    }

    /// Initial value of a location (0 if unspecified).
    pub fn init_val(&self, loc: Loc) -> Val {
        self.init.get(&loc).copied().unwrap_or(Val(0))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} threads)", self.name, self.threads.len())
    }
}

/// Fluent builder for [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Sets an initial value.
    pub fn init(mut self, loc: Loc, val: u64) -> Self {
        self.prog.init.insert(loc, Val(val));
        self
    }

    /// Adds a thread built by the closure.
    pub fn thread<F: FnOnce(&mut ThreadBuilder)>(mut self, f: F) -> Self {
        let mut tb = ThreadBuilder::default();
        f(&mut tb);
        self.prog.threads.push(Thread { instrs: tb.instrs });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        self.prog
    }
}

/// Fluent builder for a [`Thread`]'s instruction list.
#[derive(Debug, Default)]
pub struct ThreadBuilder {
    instrs: Vec<Instr>,
}

impl ThreadBuilder {
    /// Appends a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// `dst = *loc` (plain).
    pub fn load(&mut self, dst: Reg, loc: impl Into<LocSpec>) -> &mut Self {
        self.load_mode(dst, loc, AccessMode::Plain)
    }

    /// `dst = *loc` with an explicit mode.
    pub fn load_mode(&mut self, dst: Reg, loc: impl Into<LocSpec>, mode: AccessMode) -> &mut Self {
        self.push(Instr::Load { dst, loc: loc.into(), mode })
    }

    /// `*loc = val` (plain).
    pub fn store(&mut self, loc: impl Into<LocSpec>, val: impl Into<Expr>) -> &mut Self {
        self.store_mode(loc, val, AccessMode::Plain)
    }

    /// `*loc = val` with an explicit mode.
    pub fn store_mode(
        &mut self,
        loc: impl Into<LocSpec>,
        val: impl Into<Expr>,
        mode: AccessMode,
    ) -> &mut Self {
        self.push(Instr::Store { loc: loc.into(), val: val.into(), mode })
    }

    /// A fence.
    pub fn fence(&mut self, kind: FenceKind) -> &mut Self {
        self.push(Instr::Fence(kind))
    }

    /// `RMW(loc, expected, desired)` of the given flavour, discarding the
    /// old value.
    pub fn rmw(
        &mut self,
        loc: impl Into<LocSpec>,
        expected: impl Into<Expr>,
        desired: impl Into<Expr>,
        kind: RmwKind,
    ) -> &mut Self {
        self.push(Instr::Rmw {
            dst: None,
            loc: loc.into(),
            expected: expected.into(),
            desired: desired.into(),
            kind,
        })
    }

    /// `dst = RMW(loc, expected, desired)`.
    pub fn rmw_into(
        &mut self,
        dst: Reg,
        loc: impl Into<LocSpec>,
        expected: impl Into<Expr>,
        desired: impl Into<Expr>,
        kind: RmwKind,
    ) -> &mut Self {
        self.push(Instr::Rmw {
            dst: Some(dst),
            loc: loc.into(),
            expected: expected.into(),
            desired: desired.into(),
            kind,
        })
    }

    /// `dst := val` (no memory event).
    pub fn let_(&mut self, dst: Reg, val: impl Into<Expr>) -> &mut Self {
        self.push(Instr::Let { dst, val: val.into() })
    }

    /// `if (reg == eq) { then }`.
    pub fn if_eq<F: FnOnce(&mut ThreadBuilder)>(&mut self, reg: Reg, eq: u64, f: F) -> &mut Self {
        let mut tb = ThreadBuilder::default();
        f(&mut tb);
        self.push(Instr::If { reg, eq, then: tb.instrs, els: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: Loc = Loc(0);
    const Y: Loc = Loc(1);
    const R0: Reg = Reg(0);

    #[test]
    fn builder_produces_expected_shape() {
        let p = Program::builder("MP")
            .thread(|t| {
                t.store(X, 1).store(Y, 1);
            })
            .thread(|t| {
                t.load(R0, Y).load(Reg(1), X);
            })
            .build();
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].instrs.len(), 2);
        assert_eq!(p.locations(), vec![X, Y]);
        assert_eq!(p.init_val(X), Val(0));
    }

    #[test]
    fn expr_eval_and_regs() {
        let mut regs = BTreeMap::new();
        regs.insert(R0, 5);
        let e = Expr::Add(Box::new(Expr::Reg(R0)), Box::new(Expr::Const(2)));
        assert_eq!(e.eval(&regs), 7);
        let z = Expr::Xor(Box::new(Expr::Reg(R0)), Box::new(Expr::Reg(R0)));
        assert_eq!(z.eval(&regs), 0);
        assert_eq!(z.regs(), vec![R0, R0]);
        let m = Expr::Mul(Box::new(Expr::Reg(R0)), Box::new(Expr::Const(0)));
        assert_eq!(m.eval(&regs), 0);
    }

    #[test]
    fn rmw_kind_modes() {
        use risotto_memmodel::RmwTag;
        assert_eq!(RmwKind::ArmCasal.read_mode(), AccessMode::Acquire);
        assert_eq!(RmwKind::ArmCasal.write_mode(), AccessMode::Release);
        assert_eq!(RmwKind::ArmCasal.tag(), RmwTag::Amo);
        assert_eq!(RmwKind::TcgSc.read_mode(), AccessMode::Sc);
        assert_eq!(RmwKind::X86Lock.tag(), RmwTag::X86);
        let lx = RmwKind::ArmLxsx { acq: true, rel: false };
        assert_eq!(lx.read_mode(), AccessMode::Acquire);
        assert_eq!(lx.write_mode(), AccessMode::Plain);
        assert!(lx.is_lxsx());
        assert_eq!(lx.tag(), RmwTag::Lxsx);
    }

    #[test]
    fn locspec_dep_keeps_location() {
        let d = LocSpec::Dep { loc: X, via: R0 };
        assert_eq!(d.loc(), X);
    }
}
