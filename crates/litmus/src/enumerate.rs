//! Exhaustive candidate-execution enumeration.
//!
//! `[[P]]_M` — the set of `M`-consistent executions of a program `P`
//! (paper, §5.1) — is computed exactly: thread traces from
//! [`crate::elaborate`] are combined, every value-compatible `rf` assignment
//! and every per-location `co` permutation is materialized, and the model's
//! consistency predicate filters the candidates. On litmus-sized programs
//! this is the same exhaustive search `herd7` performs.

use crate::elaborate::{elaborate_program, ThreadTrace};
use crate::program::{Program, Reg};
use risotto_memmodel::{
    EventId, EventKind, Execution, ExecutionBuilder, Loc, MemoryModel, RmwPair, Tid, Val,
};
use std::collections::{BTreeMap, BTreeSet};

/// An observable program outcome: final memory plus per-thread registers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Behavior {
    /// Final value of every location (from co-maximal writes).
    pub mem: BTreeMap<Loc, u64>,
    /// Final register valuation of each thread.
    pub regs: Vec<BTreeMap<Reg, u64>>,
}

impl Behavior {
    /// The memory part alone — the paper's `Behav(X)`.
    pub fn mem_only(&self) -> BTreeMap<Loc, u64> {
        self.mem.clone()
    }

    /// Convenience lookup of a register of a thread (0 if unset).
    pub fn reg(&self, thread: usize, reg: Reg) -> u64 {
        self.regs.get(thread).and_then(|m| m.get(&reg)).copied().unwrap_or(0)
    }

    /// Convenience lookup of a final memory value (panics if absent).
    ///
    /// # Panics
    ///
    /// Panics if the location never appears in the program.
    pub fn mem_at(&self, loc: Loc) -> u64 {
        self.mem[&loc]
    }
}

/// Enumerates all `model`-consistent executions, invoking `f` on each with
/// its behavior. Returns the number of consistent executions.
pub fn for_each_consistent<M, F>(prog: &Program, model: &M, mut f: F) -> usize
where
    M: MemoryModel + ?Sized,
    F: FnMut(&Execution, &Behavior),
{
    let traces = elaborate_program(prog);
    let mut count = 0;
    let mut combo = vec![0usize; traces.len()];
    loop {
        let chosen: Vec<&ThreadTrace> =
            combo.iter().enumerate().map(|(t, &i)| &traces[t][i]).collect();
        enumerate_combo(prog, &chosen, model, &mut |x, b| {
            count += 1;
            f(x, b);
        });
        // odometer
        let mut i = 0;
        loop {
            if i == combo.len() {
                return count;
            }
            combo[i] += 1;
            if combo[i] < traces[i].len() {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
    }
}

/// The set of behaviors of `prog` under `model`.
pub fn behaviors<M: MemoryModel + ?Sized>(prog: &Program, model: &M) -> BTreeSet<Behavior> {
    let mut out = BTreeSet::new();
    for_each_consistent(prog, model, |_, b| {
        out.insert(b.clone());
    });
    out
}

/// `true` if some behavior satisfies the predicate — the `exists` clause of
/// a litmus test.
pub fn allows<M, F>(prog: &Program, model: &M, pred: F) -> bool
where
    M: MemoryModel + ?Sized,
    F: Fn(&Behavior) -> bool,
{
    behaviors(prog, model).iter().any(pred)
}

fn enumerate_combo<M, F>(prog: &Program, chosen: &[&ThreadTrace], model: &M, f: &mut F)
where
    M: MemoryModel + ?Sized,
    F: FnMut(&Execution, &Behavior),
{
    // --- Build the event skeleton. -------------------------------------
    let mut b = ExecutionBuilder::new();
    let locs = prog.locations();
    let mut init_writer: BTreeMap<Loc, EventId> = BTreeMap::new();
    for &loc in &locs {
        let id = b.push_event(
            None,
            EventKind::Write {
                loc,
                val: prog.init_val(loc),
                mode: risotto_memmodel::AccessMode::Plain,
            },
        );
        init_writer.insert(loc, id);
    }
    let mut global_ids: Vec<Vec<EventId>> = Vec::new();
    for (tid, trace) in chosen.iter().enumerate() {
        let mut ids = Vec::new();
        let mut prev: Option<EventId> = None;
        for ev in &trace.events {
            let id = b.push_event(Some(Tid(tid as u32)), ev.kind);
            if let Some(p) = prev {
                b.push_po(p, id);
            }
            prev = Some(id);
            ids.push(id);
        }
        for (local, ev) in trace.events.iter().enumerate() {
            for &d in &ev.addr_deps {
                b.push_addr(ids[d], ids[local]);
            }
            for &d in &ev.data_deps {
                b.push_data(ids[d], ids[local]);
            }
            for &d in &ev.ctrl_deps {
                b.push_ctrl(ids[d], ids[local]);
            }
        }
        for rmw in &trace.rmws {
            b.push_rmw(RmwPair {
                read: ids[rmw.read],
                write: rmw.write.map(|w| ids[w]),
                tag: rmw.tag,
            });
        }
        global_ids.push(ids);
    }
    let skeleton = b.build();

    // --- Reads and their rf candidates. --------------------------------
    let mut reads: Vec<(EventId, Loc, Val)> = Vec::new();
    let mut writes_by_loc: BTreeMap<Loc, Vec<EventId>> = BTreeMap::new();
    for ev in &skeleton.events {
        match ev.kind {
            EventKind::Read { loc, val, .. } => reads.push((ev.id, loc, val)),
            EventKind::Write { loc, .. } => writes_by_loc.entry(loc).or_default().push(ev.id),
            EventKind::Fence(_) => {}
        }
    }
    let rf_candidates: Vec<Vec<EventId>> = reads
        .iter()
        .map(|&(_, loc, val)| {
            writes_by_loc
                .get(&loc)
                .map(|ws| {
                    ws.iter().copied().filter(|w| skeleton.events[w.0].val() == Some(val)).collect()
                })
                .unwrap_or_default()
        })
        .collect();
    if rf_candidates.iter().any(Vec::is_empty) && !reads.is_empty() {
        return; // some guessed value is not writable: no execution.
    }

    // --- co permutations per location (init write first). --------------
    let co_perms: Vec<(Loc, Vec<Vec<EventId>>)> = writes_by_loc
        .iter()
        .map(|(&loc, ws)| {
            let non_init: Vec<EventId> =
                ws.iter().copied().filter(|w| !skeleton.events[w.0].is_init()).collect();
            (loc, permutations(&non_init))
        })
        .collect();

    // --- Search the rf × co product. ------------------------------------
    let behavior_regs: Vec<BTreeMap<Reg, u64>> = chosen.iter().map(|t| t.regs.clone()).collect();
    let mut rf_choice = vec![0usize; reads.len()];
    loop {
        let mut x = skeleton.clone();
        for (i, &(r, _, _)) in reads.iter().enumerate() {
            x.rf.insert(rf_candidates[i][rf_choice[i]], r);
        }
        enumerate_co(&mut x, &init_writer, &co_perms, 0, model, &behavior_regs, f);

        let mut i = 0;
        loop {
            if i == rf_choice.len() {
                return;
            }
            rf_choice[i] += 1;
            if rf_choice[i] < rf_candidates[i].len() {
                break;
            }
            rf_choice[i] = 0;
            i += 1;
        }
        if reads.is_empty() {
            return;
        }
    }
}

fn enumerate_co<M, F>(
    x: &mut Execution,
    init_writer: &BTreeMap<Loc, EventId>,
    co_perms: &[(Loc, Vec<Vec<EventId>>)],
    depth: usize,
    model: &M,
    regs: &[BTreeMap<Reg, u64>],
    f: &mut F,
) where
    M: MemoryModel + ?Sized,
    F: FnMut(&Execution, &Behavior),
{
    if depth == co_perms.len() {
        debug_assert!(
            x.is_well_formed(),
            "enumerator produced ill-formed execution:\n{}",
            x.dump()
        );
        if model.is_consistent(x) {
            let mem = x.behavior().into_iter().map(|(l, v)| (l, v.0)).collect();
            let b = Behavior { mem, regs: regs.to_vec() };
            f(x, &b);
        }
        return;
    }
    let (loc, perms) = &co_perms[depth];
    let init = init_writer[loc];
    for perm in perms {
        let saved = x.co.clone();
        // init before everything; total order along the permutation.
        for (i, &w) in perm.iter().enumerate() {
            x.co.insert(init, w);
            for &w2 in &perm[i + 1..] {
                x.co.insert(w, w2);
            }
        }
        enumerate_co(x, init_writer, co_perms, depth + 1, model, regs, f);
        x.co = saved;
    }
}

/// All permutations of a slice (n! of them). Litmus programs have at most a
/// handful of writes per location.
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head.clone());
            out.push(tail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use risotto_memmodel::{Sc, X86Tso};

    const X: Loc = Loc(0);
    const Y: Loc = Loc(1);
    const R0: Reg = Reg(0);
    const R1: Reg = Reg(1);

    fn sb() -> Program {
        Program::builder("SB")
            .thread(|t| {
                t.store(X, 1).load(R0, Y);
            })
            .thread(|t| {
                t.store(Y, 1).load(R1, X);
            })
            .build()
    }

    #[test]
    fn sb_weak_outcome_tso_only() {
        let p = sb();
        let weak = |b: &Behavior| b.reg(0, R0) == 0 && b.reg(1, R1) == 0;
        assert!(allows(&p, &X86Tso::new(), weak), "TSO must allow SB");
        assert!(!allows(&p, &Sc::new(), weak), "SC must forbid SB");
    }

    #[test]
    fn mp_weak_outcome_forbidden_on_x86() {
        let p = Program::builder("MP")
            .thread(|t| {
                t.store(X, 1).store(Y, 1);
            })
            .thread(|t| {
                t.load(R0, Y).load(R1, X);
            })
            .build();
        let weak = |b: &Behavior| b.reg(1, R0) == 1 && b.reg(1, R1) == 0;
        assert!(!allows(&p, &X86Tso::new(), weak), "x86 must forbid MP");
        // All four strong outcomes exist under SC.
        let bs = behaviors(&p, &Sc::new());
        assert!(bs.len() >= 3);
    }

    #[test]
    fn coherence_single_location() {
        // CoRR: two reads of the same location in one thread may not
        // observe writes in opposite coherence order.
        let p = Program::builder("CoRR")
            .thread(|t| {
                t.store(X, 1);
            })
            .thread(|t| {
                t.store(X, 2);
            })
            .thread(|t| {
                t.load(R0, X).load(R1, X);
            })
            .build();
        // Forbidden under any model with sc-per-loc: r0=1,r1=2 and r0=2,r1=1
        // cannot both... actually each alone is allowed; the violation needs
        // a fourth thread. Here we check basic plausibility instead: the
        // thread can never read 1 then 0 then... simply: r0=1,r1=1 allowed.
        assert!(allows(&p, &X86Tso::new(), |b| b.reg(2, R0) == 1 && b.reg(2, R1) == 1));
        // Reading X=1 then X=0 (initial) is a coherence violation: once a
        // write is observed, the init value cannot be re-observed.
        assert!(!allows(&p, &X86Tso::new(), |b| b.reg(2, R0) == 1 && b.reg(2, R1) == 0));
    }

    #[test]
    fn behavior_final_memory() {
        let p = Program::builder("final")
            .thread(|t| {
                t.store(X, 1).store(X, 2);
            })
            .build();
        let bs = behaviors(&p, &Sc::new());
        assert_eq!(bs.len(), 1);
        assert_eq!(bs.iter().next().unwrap().mem_at(X), 2);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations::<u32>(&[]).len(), 1);
    }
}
