//! The litmus corpus: every example program from the paper, plus the
//! classic tests used by the mapping-verification sweep.
//!
//! Naming follows the paper: `MP`, `MPQ`, `SBQ`, `FMR`, `SBAL`, `LB-IR`,
//! `MP-IR` and the two Fig. 9 RMW tests. Each function documents the
//! expected allowed/forbidden verdicts, which the test-suite asserts
//! mechanically through the enumerator.

use crate::program::{Expr, LocSpec, Program, Reg, RmwKind};
use risotto_memmodel::{AccessMode, FenceKind, Loc};

/// Location `X`.
pub const X: Loc = Loc(0);
/// Location `Y`.
pub const Y: Loc = Loc(1);
/// Location `Z`.
pub const Z: Loc = Loc(2);
/// Location `U`.
pub const U: Loc = Loc(3);

/// Register `a` (paper's first observer register).
pub const A: Reg = Reg(0);
/// Register `b`.
pub const B: Reg = Reg(1);
/// Register `c`.
pub const C: Reg = Reg(2);

// ---------------------------------------------------------------------
// Classics (x86-flavoured unless noted).
// ---------------------------------------------------------------------

/// Message passing (§2.1): `T0: X=1; Y=1 ∥ T1: a=Y; b=X`.
///
/// Weak outcome `a=1 ∧ b=0`: allowed on Arm, forbidden on x86 and SC.
pub fn mp() -> Program {
    Program::builder("MP")
        .thread(|t| {
            t.store(X, 1).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).load(B, X);
        })
        .build()
}

/// Store buffering: `T0: X=1; a=Y ∥ T1: Y=1; b=X`.
///
/// Weak outcome `a=b=0`: allowed on x86 (and Arm), forbidden on SC.
pub fn sb() -> Program {
    Program::builder("SB")
        .thread(|t| {
            t.store(X, 1).load(A, Y);
        })
        .thread(|t| {
            t.store(Y, 1).load(B, X);
        })
        .build()
}

/// Store buffering with `MFENCE`s — forbidden even on x86.
pub fn sb_fenced() -> Program {
    Program::builder("SB+mfences")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::MFence).load(A, Y);
        })
        .thread(|t| {
            t.store(Y, 1).fence(FenceKind::MFence).load(B, X);
        })
        .build()
}

/// Load buffering: `T0: a=X; Y=1 ∥ T1: b=Y; X=1`.
///
/// Weak outcome `a=b=1`: forbidden on x86 (R→W in ppo), allowed in the bare
/// TCG IR model without fences.
pub fn lb() -> Program {
    Program::builder("LB")
        .thread(|t| {
            t.load(A, X).store(Y, 1);
        })
        .thread(|t| {
            t.load(B, Y).store(X, 1);
        })
        .build()
}

/// Independent reads of independent writes (4 threads).
///
/// Weak outcome (the two readers disagree on the write order): forbidden on
/// x86, allowed on non-MCA models (Arm is MCA, so forbidden there too).
pub fn iriw() -> Program {
    Program::builder("IRIW")
        .thread(|t| {
            t.store(X, 1);
        })
        .thread(|t| {
            t.store(Y, 1);
        })
        .thread(|t| {
            t.load(A, X).load(B, Y);
        })
        .thread(|t| {
            t.load(C, Y).load(Reg(3), X);
        })
        .build()
}

/// 2+2W: `T0: X=1; Y=2 ∥ T1: Y=1; X=2`; weak outcome: final `X=1 ∧ Y=1`.
pub fn two_plus_two_w() -> Program {
    Program::builder("2+2W")
        .thread(|t| {
            t.store(X, 1).store(Y, 2);
        })
        .thread(|t| {
            t.store(Y, 1).store(X, 2);
        })
        .build()
}

/// S: `T0: X=2; Y=1 ∥ T1: a=Y; X=1`; weak outcome `a=1 ∧ X=2` final.
pub fn s_test() -> Program {
    Program::builder("S")
        .thread(|t| {
            t.store(X, 2).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).store(X, 1);
        })
        .build()
}

/// R: `T0: X=1; Y=1 ∥ T1: Y=2; a=X`; weak outcome `Y=2 final ∧ a=0`.
pub fn r_test() -> Program {
    Program::builder("R")
        .thread(|t| {
            t.store(X, 1).store(Y, 1);
        })
        .thread(|t| {
            t.store(Y, 2).load(A, X);
        })
        .build()
}

// ---------------------------------------------------------------------
// §3.2 — errors in Qemu.
// ---------------------------------------------------------------------

/// MPQ source (x86): `T0: X=1; Y=1 ∥ T1: a=Y; if (a==1) RMW(X,1,2)`.
///
/// x86 forbids `a=1 ∧ X=1` (final): if the read observed `Y=1`, the RMW
/// must observe `X=1` and succeed.
pub fn mpq_x86() -> Program {
    Program::builder("MPQ(x86)")
        .thread(|t| {
            t.store(X, 1).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).if_eq(A, 1, |b| {
                b.rmw(X, 1u64, 2u64, RmwKind::X86Lock);
            });
        })
        .build()
}

/// MPQ as translated by Qemu with GCC 10 (`casal` ⇒ `RMW1_AL`), §3.2:
///
/// ```text
/// T0: DMBFF; X=1; DMBFF; Y=1
/// T1: DMBLD; a=Y; if (a==1) RMW1_AL(X,1,2)
/// ```
///
/// Arm *allows* `a=1 ∧ X=1`: the plain read `a=Y` and the RMW's acquire
/// read are unordered, so the translation is erroneous.
pub fn mpq_arm_qemu() -> Program {
    Program::builder("MPQ(arm,qemu)")
        .thread(|t| {
            t.fence(FenceKind::DmbFf).store(X, 1).fence(FenceKind::DmbFf).store(Y, 1);
        })
        .thread(|t| {
            t.fence(FenceKind::DmbLd).load(A, Y).if_eq(A, 1, |b| {
                b.rmw(X, 1u64, 2u64, RmwKind::ArmCasal);
            });
        })
        .build()
}

/// MPQ as translated by Risotto's verified mappings (Fig. 7c): trailing
/// `DMBLD` after loads, leading `DMBST` before stores, RMW → `RMW1_AL`.
/// Forbids `a=1 ∧ X=1` again.
pub fn mpq_arm_verified() -> Program {
    Program::builder("MPQ(arm,verified)")
        .thread(|t| {
            t.fence(FenceKind::DmbSt).store(X, 1).fence(FenceKind::DmbSt).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).fence(FenceKind::DmbLd).if_eq(A, 1, |b| {
                b.rmw(X, 1u64, 2u64, RmwKind::ArmCasal);
            });
        })
        .build()
}

/// SBQ source (x86):
///
/// ```text
/// T0: X=1; RMW(Z,0,1); a=Y
/// T1: Y=1; RMW(U,0,1); b=X
/// ```
///
/// x86 forbids `Z=U=1 ∧ a=b=0` — successful RMWs order store→load.
pub fn sbq_x86() -> Program {
    Program::builder("SBQ(x86)")
        .thread(|t| {
            t.store(X, 1).rmw(Z, 0u64, 1u64, RmwKind::X86Lock).load(A, Y);
        })
        .thread(|t| {
            t.store(Y, 1).rmw(U, 0u64, 1u64, RmwKind::X86Lock).load(B, X);
        })
        .build()
}

/// SBQ as translated by Qemu with GCC 9 (`ldaxr`/`stlxr` ⇒ `RMW2_AL`), §3.2:
///
/// ```text
/// T0: DMBFF; X=1; RMW2_AL(Z,0,1); DMBLD; a=Y
/// T1: DMBFF; Y=1; RMW2_AL(U,0,1); DMBLD; b=X
/// ```
///
/// Arm allows `Z=U=1 ∧ a=b=0` — neither `RMW2_AL` nor `DMBLD` orders the
/// store→load pairs, so the translation is erroneous.
pub fn sbq_arm_qemu() -> Program {
    Program::builder("SBQ(arm,qemu)")
        .thread(|t| {
            t.fence(FenceKind::DmbFf)
                .store(X, 1)
                .rmw(Z, 0u64, 1u64, RmwKind::ArmLxsx { acq: true, rel: true })
                .fence(FenceKind::DmbLd)
                .load(A, Y);
        })
        .thread(|t| {
            t.fence(FenceKind::DmbFf)
                .store(Y, 1)
                .rmw(U, 0u64, 1u64, RmwKind::ArmLxsx { acq: true, rel: true })
                .fence(FenceKind::DmbLd)
                .load(B, X);
        })
        .build()
}

/// SBQ under the verified mappings with the `RMW2` lowering
/// (`DMBFF; RMW2; DMBFF`, Fig. 7b): forbids the SB outcome.
pub fn sbq_arm_verified_rmw2() -> Program {
    Program::builder("SBQ(arm,verified,rmw2)")
        .thread(|t| {
            t.fence(FenceKind::DmbSt)
                .store(X, 1)
                .fence(FenceKind::DmbFf)
                .rmw(Z, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false })
                .fence(FenceKind::DmbFf)
                .load(A, Y)
                .fence(FenceKind::DmbLd);
        })
        .thread(|t| {
            t.fence(FenceKind::DmbSt)
                .store(Y, 1)
                .fence(FenceKind::DmbFf)
                .rmw(U, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false })
                .fence(FenceKind::DmbFf)
                .load(B, X)
                .fence(FenceKind::DmbLd);
        })
        .build()
}

/// SBQ under the verified mappings with the `RMW1_AL` lowering: correct
/// only under the *corrected* Arm model, where `casal` is a full barrier.
pub fn sbq_arm_verified_casal() -> Program {
    Program::builder("SBQ(arm,verified,casal)")
        .thread(|t| {
            t.fence(FenceKind::DmbSt)
                .store(X, 1)
                .rmw(Z, 0u64, 1u64, RmwKind::ArmCasal)
                .load(A, Y)
                .fence(FenceKind::DmbLd);
        })
        .thread(|t| {
            t.fence(FenceKind::DmbSt)
                .store(Y, 1)
                .rmw(U, 0u64, 1u64, RmwKind::ArmCasal)
                .load(B, X)
                .fence(FenceKind::DmbLd);
        })
        .build()
}

/// FMR source (TCG IR, §3.2):
///
/// ```text
/// T0: X=3; Fmr; Y=2; a=Y; Frw; Z=2
/// T1: b=Z; if (b==2) { Frw; X=4; c=X }
/// ```
///
/// The TCG model forbids `a=2 ∧ c=3`.
pub fn fmr_source() -> Program {
    Program::builder("FMR(src)")
        .thread(|t| {
            t.store(X, 3)
                .fence(FenceKind::Fmr)
                .store(Y, 2)
                .load(A, Y)
                .fence(FenceKind::Frw)
                .store(Z, 2);
        })
        .thread(|t| {
            t.load(B, Z).if_eq(B, 2, |b| {
                b.fence(FenceKind::Frw).store(X, 4).load(C, X);
            });
        })
        .build()
}

/// FMR after Qemu's RAW transformation (`a=Y ↝ a:=2`): the TCG model now
/// *allows* `a=2 ∧ c=3`, exposing the transformation as unsound in the
/// presence of `Fmr`.
pub fn fmr_raw_transformed() -> Program {
    Program::builder("FMR(raw)")
        .thread(|t| {
            t.store(X, 3)
                .fence(FenceKind::Fmr)
                .store(Y, 2)
                .let_(A, 2u64)
                .fence(FenceKind::Frw)
                .store(Z, 2);
        })
        .thread(|t| {
            t.load(B, Z).if_eq(B, 2, |b| {
                b.fence(FenceKind::Frw).store(X, 4).load(C, X);
            });
        })
        .build()
}

// ---------------------------------------------------------------------
// §3.3 — error in the "desired" Arm mapping (SBAL).
// ---------------------------------------------------------------------

/// SBAL source (x86): `T0: RMW(X,0,1); a=Y ∥ T1: RMW(Y,0,1); b=X`.
///
/// x86 forbids `X=Y=1 ∧ a=b=0`.
pub fn sbal_x86() -> Program {
    Program::builder("SBAL(x86)")
        .thread(|t| {
            t.rmw(X, 0u64, 1u64, RmwKind::X86Lock).load(A, Y);
        })
        .thread(|t| {
            t.rmw(Y, 0u64, 1u64, RmwKind::X86Lock).load(B, X);
        })
        .build()
}

/// SBAL under the Arm-Cats "intended" mapping (Fig. 3): `RMW1_AL` +
/// `LDRQ` (acquire-PC) loads.
///
/// The *original* Arm model allows `X=Y=1 ∧ a=b=0` (the mapping is
/// erroneous); the *corrected* model forbids it.
pub fn sbal_arm_intended() -> Program {
    Program::builder("SBAL(arm,intended)")
        .thread(|t| {
            t.rmw(X, 0u64, 1u64, RmwKind::ArmCasal).load_mode(A, Y, AccessMode::AcquirePc);
        })
        .thread(|t| {
            t.rmw(Y, 0u64, 1u64, RmwKind::ArmCasal).load_mode(B, X, AccessMode::AcquirePc);
        })
        .build()
}

// ---------------------------------------------------------------------
// §5.4 — minimality witnesses (Fig. 8, Fig. 9).
// ---------------------------------------------------------------------

/// LB-IR (Fig. 8): load-buffering in the TCG model with trailing `Frw`
/// fences; forbids `a=b=1`. Dropping either fence re-allows it, which is
/// why the x86→IR mapping needs a trailing fence on loads.
pub fn lb_ir() -> Program {
    Program::builder("LB-IR")
        .thread(|t| {
            t.load(A, X).fence(FenceKind::Frw).store(Y, 1);
        })
        .thread(|t| {
            t.load(B, Y).fence(FenceKind::Frw).store(X, 1);
        })
        .build()
}

/// LB-IR *without* the fences: the TCG model allows `a=b=1`.
pub fn lb_ir_unfenced() -> Program {
    Program::builder("LB-IR(unfenced)")
        .thread(|t| {
            t.load(A, X).store(Y, 1);
        })
        .thread(|t| {
            t.load(B, Y).store(X, 1);
        })
        .build()
}

/// MP-IR (Fig. 8): message passing in the TCG model with a leading `Fww`
/// on the writer and an `Frr` between the reads; forbids `a=1 ∧ b=0`.
pub fn mp_ir() -> Program {
    Program::builder("MP-IR")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::Fww).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y).fence(FenceKind::Frr).load(B, X);
        })
        .build()
}

/// Fig. 9 (left): TCG source `T0: X=2; RMW(Y,0,1) ∥ T1: Y=2; RMW(X,0,1)`.
///
/// The paper's disallowed outcome "X=Y=1" is the execution in which *both*
/// RMWs succeed without observing the other thread's plain store; we
/// observe it through the RMWs' old-value registers (`a=b=0`). The TCG
/// model forbids it; unfenced Arm RMW2s allow it.
pub fn fig9_left_tcg() -> Program {
    Program::builder("Fig9L(tcg)")
        .thread(|t| {
            t.store(X, 2).rmw_into(A, Y, 0u64, 1u64, RmwKind::TcgSc);
        })
        .thread(|t| {
            t.store(Y, 2).rmw_into(B, X, 0u64, 1u64, RmwKind::TcgSc);
        })
        .build()
}

/// Fig. 9 (left) lowered to Arm with `DMBFF; RMW2; DMBFF`: still forbids
/// final `X=Y=1`.
pub fn fig9_left_arm_fenced() -> Program {
    Program::builder("Fig9L(arm,fenced)")
        .thread(|t| {
            t.store(X, 2)
                .fence(FenceKind::DmbFf)
                .rmw_into(A, Y, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false })
                .fence(FenceKind::DmbFf);
        })
        .thread(|t| {
            t.store(Y, 2)
                .fence(FenceKind::DmbFf)
                .rmw_into(B, X, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false })
                .fence(FenceKind::DmbFf);
        })
        .build()
}

/// Fig. 9 (left) lowered *without* the `DMBFF`s: Arm allows the outcome,
/// witnessing that the fences in the IR→Arm RMW2 mapping are necessary.
pub fn fig9_left_arm_unfenced() -> Program {
    Program::builder("Fig9L(arm,unfenced)")
        .thread(|t| {
            t.store(X, 2).rmw_into(A, Y, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false });
        })
        .thread(|t| {
            t.store(Y, 2).rmw_into(B, X, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false });
        })
        .build()
}

/// Fig. 9 (right): TCG source `T0: RMW(X,0,1); a=Y ∥ T1: RMW(Y,0,1); b=X`;
/// the TCG model forbids `a=b=0`.
pub fn fig9_right_tcg() -> Program {
    Program::builder("Fig9R(tcg)")
        .thread(|t| {
            t.rmw(X, 0u64, 1u64, RmwKind::TcgSc).load(A, Y);
        })
        .thread(|t| {
            t.rmw(Y, 0u64, 1u64, RmwKind::TcgSc).load(B, X);
        })
        .build()
}

/// Fig. 9 (right) lowered with `DMBFF; RMW2; DMBFF`: forbids `a=b=0`.
pub fn fig9_right_arm_fenced() -> Program {
    Program::builder("Fig9R(arm,fenced)")
        .thread(|t| {
            t.fence(FenceKind::DmbFf)
                .rmw(X, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false })
                .fence(FenceKind::DmbFf)
                .load(A, Y);
        })
        .thread(|t| {
            t.fence(FenceKind::DmbFf)
                .rmw(Y, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false })
                .fence(FenceKind::DmbFf)
                .load(B, X);
        })
        .build()
}

/// Fig. 9 (right) lowered without the fences: Arm allows `a=b=0`.
pub fn fig9_right_arm_unfenced() -> Program {
    Program::builder("Fig9R(arm,unfenced)")
        .thread(|t| {
            t.rmw(X, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false }).load(A, Y);
        })
        .thread(|t| {
            t.rmw(Y, 0u64, 1u64, RmwKind::ArmLxsx { acq: false, rel: false }).load(B, X);
        })
        .build()
}

// ---------------------------------------------------------------------
// §6.1 — fence-merging example and false dependencies.
// ---------------------------------------------------------------------

/// The §6.1 merge source: `a=X; Frm; Fww; Y=1` (adjacent fences produced by
/// the verified x86→IR mapping for `a=X; Y=1`).
pub fn merge_example() -> Program {
    Program::builder("merge(src)")
        .thread(|t| {
            t.load(A, X).fence(FenceKind::Frm).fence(FenceKind::Fww).store(Y, 1);
        })
        .thread(|t| {
            t.load(B, Y).fence(FenceKind::Frm).fence(FenceKind::Fww).store(X, 1);
        })
        .build()
}

/// The §6.1 merge result: `a=X; Fsc; Y=1`.
pub fn merge_result() -> Program {
    Program::builder("merge(dst)")
        .thread(|t| {
            t.load(A, X).fence(FenceKind::Fsc).store(Y, 1);
        })
        .thread(|t| {
            t.load(B, Y).fence(FenceKind::Fsc).store(X, 1);
        })
        .build()
}

/// A false-dependency program: `a=X; Y = a*0` — the store's value is
/// constant but syntactically depends on the load. Used to check that
/// false-dependency elimination (§6.1) is sound in the TCG model.
pub fn false_dep() -> Program {
    Program::builder("false-dep")
        .thread(|t| {
            t.load(A, X);
            t.store(Y, Expr::Mul(Box::new(Expr::Reg(A)), Box::new(Expr::Const(0))));
        })
        .thread(|t| {
            t.load(B, Y).fence(FenceKind::Frm).store(X, 1);
        })
        .build()
}

/// Address-dependency variant of MP for dependency-tracking tests: the
/// second load's address depends on the first load.
pub fn mp_addr_dep() -> Program {
    Program::builder("MP+addr-dep")
        .thread(|t| {
            t.store(X, 1).fence(FenceKind::DmbSt).store(Y, 1);
        })
        .thread(|t| {
            t.load(A, Y);
            t.load(B, LocSpec::Dep { loc: X, via: A });
        })
        .build()
}

/// Every named corpus program, for sweep-style tests.
pub fn all() -> Vec<Program> {
    vec![
        mp(),
        sb(),
        sb_fenced(),
        lb(),
        iriw(),
        two_plus_two_w(),
        s_test(),
        r_test(),
        mpq_x86(),
        mpq_arm_qemu(),
        mpq_arm_verified(),
        sbq_x86(),
        sbq_arm_qemu(),
        sbq_arm_verified_rmw2(),
        sbq_arm_verified_casal(),
        fmr_source(),
        fmr_raw_transformed(),
        sbal_x86(),
        sbal_arm_intended(),
        lb_ir(),
        lb_ir_unfenced(),
        mp_ir(),
        fig9_left_tcg(),
        fig9_left_arm_fenced(),
        fig9_left_arm_unfenced(),
        fig9_right_tcg(),
        fig9_right_arm_fenced(),
        fig9_right_arm_unfenced(),
        merge_example(),
        merge_result(),
        false_dep(),
        mp_addr_dep(),
    ]
}
