//! Acceptance test for direct TB chaining (the PR's tentpole): across the
//! full 16-kernel Fig. 12 suite, a chaining-enabled run must resolve at
//! least 90% of its direct-jump exits through patched chain slots, and its
//! architectural results (per-thread exit values and WRITE output) must be
//! bit-identical to a chaining-disabled reference run, which takes every
//! TB exit through the dispatcher.

use risotto::core::{Emulator, Setup};
use risotto::host::CostModel;
use risotto::workloads::kernels;

const FUEL: u64 = 400_000_000;

#[test]
fn chaining_matches_dispatcher_reference_on_all_kernels() {
    let mut total_hits = 0u64;
    let mut total_links = 0u64;
    for w in kernels::all() {
        let bin = (w.build)(8, 2);

        let mut chained = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        let rc = chained.run(FUEL).unwrap_or_else(|e| panic!("{} (chained): {e}", w.name));

        let mut reference = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        reference.set_chaining(false);
        let rr = reference.run(FUEL).unwrap_or_else(|e| panic!("{} (reference): {e}", w.name));

        assert_eq!(
            rc.exit_vals, rr.exit_vals,
            "{}: exit values diverge between chained and dispatcher runs",
            w.name
        );
        assert_eq!(
            rc.output, rr.output,
            "{}: guest output diverges between chained and dispatcher runs",
            w.name
        );

        // The reference config must never chain; the chained config must
        // actually exercise the chain slots on loopy kernels.
        assert_eq!(rr.chain.chain_links, 0, "{}: reference run created chains", w.name);
        assert_eq!(rr.chain.chain_hits, 0, "{}: reference run took a chain", w.name);
        assert!(
            rc.chain.chain_hits + rc.chain.chain_links > 0,
            "{}: chained run never took a direct-jump exit",
            w.name
        );

        total_hits += rc.chain.chain_hits;
        total_links += rc.chain.chain_links;
    }
    // ≥90% of all direct-jump exits resolved via an already-patched chain
    // slot (the remainder are the one-time linking dispatches).
    let rate = total_hits as f64 / (total_hits + total_links) as f64;
    assert!(
        rate >= 0.90,
        "chain-hit rate {rate:.3} below 0.90 ({total_hits} hits / {total_links} links)"
    );
}
