//! Acceptance test for direct TB chaining (the PR's tentpole): across the
//! full 16-kernel Fig. 12 suite, a chaining-enabled run must resolve at
//! least 90% of its direct-jump exits through patched chain slots, and its
//! architectural results (per-thread exit values and WRITE output) must be
//! bit-identical to a chaining-disabled reference run, which takes every
//! TB exit through the dispatcher.

use risotto::core::{Emulator, Setup};
use risotto::host::CostModel;
use risotto::workloads::kernels;

const FUEL: u64 = 400_000_000;

#[test]
fn chaining_matches_dispatcher_reference_on_all_kernels() {
    let mut total_hits = 0u64;
    let mut total_links = 0u64;
    for w in kernels::all() {
        let bin = (w.build)(8, 2);

        let mut chained = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        let rc = chained.run(FUEL).unwrap_or_else(|e| panic!("{} (chained): {e}", w.name));

        let mut reference = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        reference.set_chaining(false);
        let rr = reference.run(FUEL).unwrap_or_else(|e| panic!("{} (reference): {e}", w.name));

        assert_eq!(
            rc.exit_vals, rr.exit_vals,
            "{}: exit values diverge between chained and dispatcher runs",
            w.name
        );
        assert_eq!(
            rc.output, rr.output,
            "{}: guest output diverges between chained and dispatcher runs",
            w.name
        );

        // The reference config must never chain; the chained config must
        // actually exercise the chain slots on loopy kernels.
        assert_eq!(rr.chain.chain_links, 0, "{}: reference run created chains", w.name);
        assert_eq!(rr.chain.chain_hits, 0, "{}: reference run took a chain", w.name);
        assert!(
            rc.chain.chain_hits + rc.chain.chain_links > 0,
            "{}: chained run never took a direct-jump exit",
            w.name
        );

        total_hits += rc.chain.chain_hits;
        total_links += rc.chain.chain_links;
    }
    // ≥90% of all direct-jump exits resolved via an already-patched chain
    // slot (the remainder are the one-time linking dispatches).
    let rate = total_hits as f64 / (total_hits + total_links) as f64;
    assert!(
        rate >= 0.90,
        "chain-hit rate {rate:.3} below 0.90 ({total_hits} hits / {total_links} links)"
    );
}

/// A single-thread guest whose helper returns to `sites` distinct call
/// sites, `passes` times each: every `ret` is an indirect transfer whose
/// target cycles through more return addresses than the per-core jump
/// cache has slots.
fn jcache_stress_bin(sites: usize, passes: u64) -> risotto::guest::GuestBinary {
    use risotto::guest::{AluOp, Cond, GelfBuilder, Gpr};
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.mov_ri(Gpr::R11, passes);
    b.asm.label("outer");
    for _ in 0..sites {
        b.asm.call_to("helper");
    }
    b.asm.alu_ri(AluOp::Sub, Gpr::R11, 1);
    b.asm.cmp_ri(Gpr::R11, 0);
    b.asm.jcc_to(Cond::Ne, "outer");
    b.asm.hlt();
    b.asm.label("helper");
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 1);
    b.asm.ret();
    b.finish().unwrap()
}

/// Overfilling the 64-entry direct-mapped jump cache must degrade
/// gracefully: colliding targets keep evicting each other (misses stay
/// above the distinct-target count), non-colliding targets still hit,
/// and the hit/miss split exactly accounts for every indirect transfer
/// the dispatcher-only reference run performs.
#[test]
fn jump_cache_eviction_keeps_dispatch_accounting_consistent() {
    const SITES: usize = 100; // > JCACHE_SIZE (64): guarantees collisions
    const PASSES: u64 = 8;
    let bin = jcache_stress_bin(SITES, PASSES);

    let mut cached = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    let rc = cached.run(FUEL).expect("cached run completes");

    let mut reference = Emulator::new(&bin, Setup::Risotto, 1, CostModel::thunderx2_like());
    reference.set_chaining(false);
    let rr = reference.run(FUEL).expect("reference run completes");

    assert_eq!(rc.exit_vals[0], Some(SITES as u64 * PASSES), "wrong call count");
    assert_eq!(rc.exit_vals, rr.exit_vals, "exit values diverge with the jump cache on");
    assert_eq!(rc.output, rr.output, "guest output diverges with the jump cache on");

    // The reference run takes every indirect exit through the full
    // dispatcher; the cached run must split the same transfer total into
    // hits + misses, no transfer lost or double-counted.
    assert_eq!(rr.chain.dispatch_hits, 0, "reference run must never hit the jump cache");
    assert_eq!(
        rc.chain.dispatch_hits + rc.chain.dispatch_misses,
        rr.chain.dispatch_misses,
        "jump-cache hit/miss split must preserve the indirect-transfer total"
    );

    // Collisions: 100 targets in 64 direct-mapped slots means some pairs
    // share a slot and evict each other on every pass — cold misses
    // alone (one per distinct target) cannot explain the miss count.
    assert!(
        rc.chain.dispatch_misses > SITES as u64,
        "expected eviction re-misses beyond the {SITES} cold misses, got {}",
        rc.chain.dispatch_misses
    );
    // Non-colliding slots still serve hits after their cold miss.
    assert!(rc.chain.dispatch_hits > 0, "jump cache never hit despite repeated targets");
}
