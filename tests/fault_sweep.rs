//! Fault-injection sweep and graceful-degradation tests.
//!
//! The robustness contract: under *any* [`FaultPlan`], a run either
//! completes with observable output (thread-0 checksum + WRITE bytes)
//! identical to the fault-free reference interpreter, or returns a typed
//! [`EmuError`] — never a panic, never a silently wrong result.

use risotto::core::{EmuError, Emulator, FaultPlan, FaultSite, SchedPolicy, Setup};
use risotto::guest::{syscalls, AluOp, Cond, GelfBuilder, Gpr, GuestBinary, Interp};
use risotto::host::CostModel;
use risotto::workloads::kernels;

const FUEL: u64 = 200_000_000;

fn cost() -> CostModel {
    CostModel::thunderx2_like()
}

/// Fault-free reference: the guest interpreter's checksum and output.
fn reference(bin: &GuestBinary) -> (u64, Vec<u8>) {
    let mut interp = Interp::new(bin);
    interp.run(FUEL).expect("reference interpreter must complete");
    (interp.exit_val(0), interp.output.clone())
}

/// A varied plan per seed: background rates over different site mixes,
/// with an occasional targeted syscall rejection.
fn plan_for(seed: u64) -> FaultPlan {
    let mut p = FaultPlan::seeded(seed);
    match seed % 4 {
        0 => p = p.rate(FaultSite::Translate, 2000),
        1 => p = p.rate(FaultSite::Lower, 2000),
        2 => p = p.rate(FaultSite::TbCache, 4000),
        _ => {
            p = p
                .rate(FaultSite::Translate, 900)
                .rate(FaultSite::Lower, 900)
                .rate(FaultSite::TbCache, 2000);
        }
    }
    if seed % 10 == 9 {
        p = p.fail_syscall_at(seed % 7);
    }
    p
}

/// ≥200 seeded plans × 4 workloads × rotating setups: every run must
/// either match the reference exactly or fail with a typed error.
#[test]
fn seeded_fault_sweep_never_diverges_silently() {
    let picks = ["histogram", "blackscholes", "matrixmultiply", "wordcount"];
    let workloads: Vec<_> =
        kernels::all().into_iter().filter(|w| picks.contains(&w.name)).collect();
    assert_eq!(workloads.len(), 4);
    let setups = [Setup::Qemu, Setup::TcgVer, Setup::Risotto, Setup::Native];

    let mut completed = 0u32;
    let mut typed_errors = 0u32;
    let mut total_fallbacks = 0usize;
    let mut total_retranslations = 0usize;
    for w in &workloads {
        let bin = (w.build)(6, 2);
        let (ref_exit, ref_out) = reference(&bin);
        for seed in 0..200u64 {
            let setup = setups[(seed % setups.len() as u64) as usize];
            let mut emu = Emulator::new(&bin, setup, 2, cost());
            emu.set_fault_plan(plan_for(seed));
            match emu.run(FUEL) {
                Ok(report) => {
                    assert_eq!(
                        report.exit_vals[0],
                        Some(ref_exit),
                        "{} seed {seed} ({}): checksum diverged under faults",
                        w.name,
                        setup.name(),
                    );
                    assert_eq!(
                        report.output,
                        ref_out,
                        "{} seed {seed} ({}): output diverged under faults",
                        w.name,
                        setup.name(),
                    );
                    completed += 1;
                    total_fallbacks += report.fallback_blocks;
                    total_retranslations += report.retranslations;
                }
                // Any typed error is an acceptable outcome — the contract
                // forbids only panics and silent divergence.
                Err(_) => typed_errors += 1,
            }
        }
    }
    // The sweep must actually exercise degradation, not just error out.
    assert!(completed >= 500, "only {completed}/800 runs completed");
    assert!(total_fallbacks > 0, "no run ever used the interpreter fallback");
    assert!(total_retranslations > 0, "no run ever re-translated a block");
    assert!(typed_errors > 0, "syscall injections never surfaced as typed errors");
}

/// Counts to `n` in a loop (exit value = n), with a WRITE on the way.
/// The loop head is its own revisited block (label `loop`); with
/// `gettid_each_iter` every iteration also performs a syscall, so the
/// engine's event loop runs once per iteration.
fn counting_binary(n: u64, gettid_each_iter: bool) -> GuestBinary {
    let mut b = GelfBuilder::new("main");
    let msg = b.data_bytes(b"ok\n");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, syscalls::WRITE);
    b.asm.mov_ri(Gpr::RDI, 1);
    b.asm.mov_ri(Gpr::RSI, msg);
    b.asm.mov_ri(Gpr::RDX, 3);
    b.asm.syscall();
    b.asm.mov_ri(Gpr::RBX, 0);
    b.asm.mov_ri(Gpr::RCX, n);
    b.asm.label("loop");
    if gettid_each_iter {
        b.asm.mov_ri(Gpr::RAX, syscalls::GETTID);
        b.asm.syscall();
    }
    b.asm.alu_ri(AluOp::Add, Gpr::RBX, 1);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::Ne, "loop");
    b.asm.mov_rr(Gpr::RAX, Gpr::RBX);
    b.asm.hlt();
    b.finish().unwrap()
}

/// A block whose translation always fails is interpreted instead; the
/// run completes with the right answer, reports the fallback, and the
/// re-translation retries are bounded (not one per loop iteration).
#[test]
fn translate_fault_falls_back_to_interpreter() {
    let bin = counting_binary(500, false);
    let loop_pc = bin.symbols["loop"];
    for setup in Setup::ALL {
        let mut emu = Emulator::new(&bin, setup, 1, cost());
        emu.set_fault_plan(FaultPlan::seeded(3).fail_translate_at(loop_pc));
        let r = emu.run(FUEL).unwrap_or_else(|e| panic!("{}: {e}", setup.name()));
        assert_eq!(r.exit_vals[0], Some(500), "{}", setup.name());
        assert_eq!(r.output, b"ok\n", "{}", setup.name());
        assert!(r.fallback_blocks >= 1, "{}: no fallback reported", setup.name());
        assert!(
            (1..=4).contains(&r.retranslations),
            "{}: retries not bounded: {}",
            setup.name(),
            r.retranslations
        );
    }
}

/// Backend (lowering) faults degrade the same way as frontend faults.
#[test]
fn lower_fault_falls_back_to_interpreter() {
    let bin = counting_binary(500, false);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(4).fail_lower_at(bin.symbols["loop"]));
    let r = emu.run(FUEL).unwrap();
    assert_eq!(r.exit_vals[0], Some(500));
    assert!(r.fallback_blocks >= 1);
}

/// Detected TB corruption discards the entry and re-translates it; the
/// result is unchanged and the refill is counted.
#[test]
fn tb_corruption_is_retranslated() {
    let bin = counting_binary(500, true);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(5).corrupt_tb_at(bin.symbols["loop"]));
    let r = emu.run(FUEL).unwrap();
    assert_eq!(r.exit_vals[0], Some(500));
    assert_eq!(r.output, b"ok\n");
    assert!(r.retranslations >= 1, "corruption refill not counted");
    assert_eq!(r.fallback_blocks, 0, "corruption must not force interpretation");
}

/// The PR-1 failure model meets TB chaining: corrupting (→ unmapping) the
/// loop-head TB *after it has been chained into* must unlink the chain —
/// the core takes a dispatcher miss and re-translates instead of running
/// the stale body. A still-patched chain would show up as a completed run
/// with zero retranslations (and, under eviction-with-replacement, as a
/// wrong count).
#[test]
fn unmapping_a_chained_into_tb_forces_retranslation() {
    // Counts to `n`; on iteration `k` only, performs a GETTID syscall.
    // The loop back-edge chains into the loop head during the event-free
    // iterations before `k`, so the one-shot corruption (which the engine
    // applies at the next event) hits a TB that is *already chained into*.
    let (n, k) = (500u64, 10u64);
    let mut b = GelfBuilder::new("main");
    let msg = b.data_bytes(b"ok\n");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, syscalls::WRITE);
    b.asm.mov_ri(Gpr::RDI, 1);
    b.asm.mov_ri(Gpr::RSI, msg);
    b.asm.mov_ri(Gpr::RDX, 3);
    b.asm.syscall();
    b.asm.mov_ri(Gpr::RBX, 0);
    b.asm.label("loop");
    b.asm.alu_ri(AluOp::Add, Gpr::RBX, 1);
    b.asm.cmp_ri(Gpr::RBX, k);
    b.asm.jcc_to(Cond::Ne, "skip");
    b.asm.mov_ri(Gpr::RAX, syscalls::GETTID);
    b.asm.syscall();
    b.asm.label("skip");
    b.asm.cmp_ri(Gpr::RBX, n);
    b.asm.jcc_to(Cond::Ne, "loop");
    b.asm.mov_rr(Gpr::RAX, Gpr::RBX);
    b.asm.hlt();
    let bin = b.finish().unwrap();

    let loop_pc = bin.symbols["loop"];
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(5).corrupt_tb_at(loop_pc));
    let r = emu.run(FUEL).unwrap();
    assert_eq!(r.exit_vals[0], Some(n));
    assert_eq!(r.output, b"ok\n");
    assert!(r.chain.chain_links >= 2, "the loop edges were never chained");
    assert!(
        r.chain.chain_flushes >= 1,
        "unmapping the chained-into TB must unlink its incoming chains"
    );
    assert!(r.retranslations >= 1, "after the unlink the dispatcher must miss and re-translate");
}

/// Satellite: retranslation churn must not grow the host code buffer
/// without bound. Under heavy eviction pressure the buffer stays within a
/// small factor of the fault-free footprint, because unmapped regions are
/// reclaimed and reused.
#[test]
fn high_churn_eviction_keeps_the_code_buffer_bounded() {
    let bin = counting_binary(2_000, true);
    let baseline = {
        let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
        emu.run(FUEL).unwrap().code_bytes
    };
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(7).rate(FaultSite::TbCache, 4000));
    let r = emu.run(FUEL).unwrap();
    assert_eq!(r.exit_vals[0], Some(2_000));
    assert!(r.retranslations >= 20, "eviction pressure too low to test reclamation");
    assert!(
        r.code_bytes <= baseline * 2,
        "code buffer grew without bound under churn: {} vs fault-free {}",
        r.code_bytes,
        baseline
    );
}

/// Injected syscall-layer faults are non-recoverable and typed, with the
/// failing layer, core, and guest pc attached.
#[test]
fn syscall_fault_is_a_typed_error() {
    let bin = counting_binary(10, false);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(6).fail_syscall_at(0));
    match emu.run(FUEL) {
        Err(EmuError::Injected { site: FaultSite::Syscall, core: 0, pc }) => {
            assert!(pc > 0, "guest pc missing from the error");
        }
        other => panic!("expected an injected syscall error, got {other:?}"),
    }
}

/// A guest spin-loop makes no observable progress: with the watchdog
/// armed, the run fails with [`EmuError::Stalled`] and a per-core dump —
/// under every scheduling policy.
#[test]
fn watchdog_catches_spin_loop_under_all_schedulers() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.label("spin");
    b.asm.jmp_to("spin");
    let bin = b.finish().unwrap();
    for policy in [SchedPolicy::Deterministic, SchedPolicy::Random(11), SchedPolicy::Adversarial] {
        let mut emu = Emulator::new(&bin, Setup::Risotto, 2, cost());
        emu.set_sched_policy(policy);
        emu.set_watchdog(5_000);
        match emu.run(FUEL) {
            Err(EmuError::Stalled { steps, cores }) => {
                assert!(steps >= 5_000, "{policy:?}: fired early at {steps}");
                assert_eq!(cores.len(), 2, "{policy:?}: dump missing cores");
                assert!(!cores[0].halted, "{policy:?}: spinning core reported halted");
            }
            other => panic!("{policy:?}: expected a stall, got {other:?}"),
        }
    }
}

/// The watchdog is quiet on a run that finishes: progress markers (new
/// TBs, syscalls, exits) keep resetting it.
#[test]
fn watchdog_does_not_fire_on_progressing_runs() {
    let bin = counting_binary(2_000, false);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_watchdog(1_000_000);
    let r = emu.run(FUEL).unwrap();
    assert_eq!(r.exit_vals[0], Some(2_000));
}

/// Undecodable guest bytes are not maskable by the fallback: the
/// interpreter hits the same bytes, and the run fails with a typed
/// translation error carrying the pc — even with fault injection active.
#[test]
fn undecodable_bytes_stay_a_typed_error_under_faults() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, 0xdead_0000);
    b.asm.insn(risotto::guest::Insn::JmpReg { reg: Gpr::RAX });
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(8).rate(FaultSite::Translate, 30_000));
    match emu.run(FUEL) {
        Err(EmuError::Translate { source, .. }) => assert_eq!(source.pc, 0xdead_0000),
        other => panic!("expected a translation error, got {other:?}"),
    }
}

/// Failed host-library links fall back to the translated guest
/// implementation: same observable result, no native calls.
#[test]
fn failed_host_link_uses_guest_implementation() {
    use risotto::core::Idl;
    use risotto::nativelib::hostlibs;
    use risotto::workloads::libbench::{digest_bench, DigestAlgo};
    let bin = digest_bench(DigestAlgo::Sha256, 128, 1);
    let idl = Idl::parse(hostlibs::IDL_TEXT).unwrap();

    // Fault-free linked run (native digest).
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    let linked = emu.link_library(&bin, &idl, hostlibs::libcrypto()).unwrap();
    assert!(linked.contains(&"sha256".to_string()));
    let native = emu.run(FUEL).unwrap();
    assert!(native.stats.native_calls >= 1);

    // Injected link failure for sha256: validation still passes, the
    // import silently stays on the translated guest code path.
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    emu.set_fault_plan(FaultPlan::seeded(9).fail_host_call("sha256"));
    let linked = emu.link_library(&bin, &idl, hostlibs::libcrypto()).unwrap();
    assert!(!linked.contains(&"sha256".to_string()));
    let guest = emu.run(FUEL).unwrap();
    assert_eq!(guest.exit_vals[0], native.exit_vals[0], "digest changed");
    assert_eq!(guest.stats.native_calls, 0);
}
