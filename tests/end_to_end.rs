//! Workspace-level integration tests spanning every crate: binary
//! round-trips through the on-disk GELF format into the DBT, guest I/O,
//! error paths, and cross-setup agreement on library-heavy programs.

use risotto::core::{EmuError, Emulator, Idl, Setup};
use risotto::guest::{syscalls, AluOp, Cond, GelfBuilder, Gpr, GuestBinary, Interp};
use risotto::host::CostModel;
use risotto::nativelib::hostlibs;

fn cost() -> CostModel {
    CostModel::thunderx2_like()
}

/// Serialize → parse → emulate: the on-disk GELF format carries everything
/// the DBT needs (text, data, imports).
#[test]
fn gelf_bytes_roundtrip_through_the_dbt() {
    let mut b = GelfBuilder::new("main");
    let cell = b.data_u64(&[5]);
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RDI, cell);
    b.call_plt("triple");
    b.asm.hlt();
    b.plt_stub("triple", "impl_triple");
    b.asm.label("impl_triple");
    b.asm.load(Gpr::RAX, Gpr::RDI, 0);
    b.asm.alu_ri(AluOp::Mul, Gpr::RAX, 3);
    b.asm.ret();
    let original = b.finish().unwrap();

    // To disk and back.
    let bytes = original.to_bytes();
    let parsed = GuestBinary::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, original);

    let mut emu = Emulator::new(&parsed, Setup::Risotto, 1, cost());
    let r = emu.run(1_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(15));
}

/// The WRITE syscall's bytes surface in the report, identically across
/// setups.
#[test]
fn guest_output_is_captured() {
    let mut b = GelfBuilder::new("main");
    let msg = b.data_bytes(b"hello from the guest\n");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, syscalls::WRITE);
    b.asm.mov_ri(Gpr::RDI, 1);
    b.asm.mov_ri(Gpr::RSI, msg);
    b.asm.mov_ri(Gpr::RDX, 21);
    b.asm.syscall();
    b.asm.hlt();
    let bin = b.finish().unwrap();
    for setup in Setup::ALL {
        let mut emu = Emulator::new(&bin, setup, 1, cost());
        let r = emu.run(1_000_000).unwrap();
        assert_eq!(r.output, b"hello from the guest\n", "{}", setup.name());
    }
}

/// Jumping into garbage raises a translation error, not a panic.
#[test]
fn bad_code_is_a_translate_error() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, 0xdead_0000);
    b.asm.insn(risotto::guest::Insn::JmpReg { reg: Gpr::RAX });
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    match emu.run(1_000_000) {
        Err(EmuError::Translate { source, core, .. }) => {
            assert_eq!(source.pc, 0xdead_0000);
            assert_eq!(core, Some(0));
        }
        other => panic!("expected a translation error, got {other:?}"),
    }
}

/// Unknown syscalls and invalid joins are reported as errors.
#[test]
fn bad_syscalls_are_reported() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, 999);
    b.asm.syscall();
    b.asm.hlt();
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Qemu, 1, cost());
    assert!(matches!(emu.run(1_000_000), Err(EmuError::BadSyscall { n: 999, core: 0, .. })));

    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, syscalls::JOIN);
    b.asm.mov_ri(Gpr::RDI, 7); // no such thread
    b.asm.syscall();
    b.asm.hlt();
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Qemu, 2, cost());
    assert!(matches!(emu.run(1_000_000), Err(EmuError::BadJoin { tid: 7, core: 0, .. })));
}

/// Runaway guests exhaust fuel instead of hanging.
#[test]
fn infinite_loop_exhausts_fuel() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.jmp_to("main");
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    assert!(matches!(emu.run(10_000), Err(EmuError::OutOfFuel)));
}

/// Spawning more threads than cores fails cleanly.
#[test]
fn spawn_beyond_cores_fails() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    for _ in 0..3 {
        b.asm.mov_ri(Gpr::RAX, syscalls::SPAWN);
        b.asm.mov_label(Gpr::RDI, "child");
        b.asm.mov_ri(Gpr::RSI, 0);
        b.asm.syscall();
    }
    b.asm.hlt();
    b.asm.label("child");
    b.asm.label("spin");
    b.asm.jmp_to("spin");
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, cost());
    assert!(matches!(emu.run(10_000_000), Err(EmuError::TooManyThreads { .. })));
}

/// A guest program that uses *all three* host libraries in one run, with
/// linking — results identical to the unlinked (translated) run.
#[test]
fn mixed_library_program_linked_and_unlinked_agree() {
    use risotto::nativelib::guest;
    let mut b = GelfBuilder::new("main");
    let buf = b.data_bytes(&[7u8; 256]);
    let out = b.data_zeroed(64);
    b.asm.label("main");
    // digest
    b.asm.mov_ri(Gpr::RDI, buf);
    b.asm.mov_ri(Gpr::RSI, 256);
    b.asm.mov_ri(Gpr::RDX, out);
    b.call_plt("sha1");
    // kv: store first digest word under key 1, read it back
    b.asm.mov_ri(Gpr::RCX, out);
    b.asm.load(Gpr::RSI, Gpr::RCX, 0);
    b.asm.mov_ri(Gpr::RDI, 1);
    b.call_plt("kv_put");
    b.asm.mov_ri(Gpr::RDI, 1);
    b.call_plt("kv_get");
    b.asm.mov_rr(Gpr::R15, Gpr::RAX);
    // math: add trunc(1000·cos(0.5))
    b.asm.mov_ri(Gpr::RDI, 0.5f64.to_bits());
    b.call_plt("cos");
    b.asm.mov_ri(Gpr::RCX, 1000.0f64.to_bits());
    b.asm.fp(risotto::guest::FpOp::Mul, Gpr::RAX, Gpr::RCX);
    b.asm.fp(risotto::guest::FpOp::CvtFI, Gpr::RDX, Gpr::RAX);
    b.asm.alu_rr(AluOp::Add, Gpr::R15, Gpr::RDX);
    b.asm.mov_rr(Gpr::RAX, Gpr::R15);
    b.asm.hlt();
    b.plt_stub("sha1", "guest_sha1");
    b.plt_stub("kv_put", "guest_kv_put");
    b.plt_stub("kv_get", "guest_kv_get");
    b.plt_stub("cos", "guest_cos");
    guest::emit_sha1(&mut b);
    guest::emit_kv(&mut b);
    guest::emit_math(&mut b);
    let bin = b.finish().unwrap();

    // Reference (translated guest libraries).
    let mut interp = Interp::new(&bin);
    interp.run(100_000_000).unwrap();
    let expect = interp.exit_val(0);

    // tcg-ver: translated.
    let mut emu = Emulator::new(&bin, Setup::TcgVer, 1, cost());
    let r = emu.run(1_000_000_000).unwrap();
    assert_eq!(r.exit_vals[0], Some(expect));

    // risotto: linked; sha1/kv parts are bit-identical, cos is a different
    // build — compare the kv/digest part only by masking the math term
    // through a tolerance: recompute both ways.
    let idl = Idl::parse(hostlibs::IDL_TEXT).unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    for lib in [hostlibs::libcrypto(), hostlibs::libkv(), hostlibs::libm()] {
        emu.link_library(&bin, &idl, lib).unwrap();
    }
    let r = emu.run(1_000_000_000).unwrap();
    let got = r.exit_vals[0].unwrap();
    // cos kernels agree to ~1e-9, so trunc(1000·cos) matches exactly here.
    assert_eq!(got, expect, "linked and translated runs disagree");
    assert!(r.stats.native_calls >= 4);
}

/// Loops that straddle translation-block boundaries chain correctly: a
/// long unrolled body exceeding MAX_TB_INSNS still computes the right sum.
#[test]
fn long_blocks_split_and_chain() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RAX, 0);
    // 200 straight-line adds: > MAX_TB_INSNS (64), forcing TB splits.
    for i in 0..200u64 {
        b.asm.alu_ri(AluOp::Add, Gpr::RAX, i);
    }
    b.asm.hlt();
    let bin = b.finish().unwrap();
    let expect: u64 = (0..200).sum();
    for setup in Setup::ALL {
        let mut emu = Emulator::new(&bin, setup, 1, cost());
        let r = emu.run(10_000_000).unwrap();
        assert_eq!(r.exit_vals[0], Some(expect), "{}", setup.name());
        if setup == Setup::Qemu {
            assert!(r.tb_count >= 3, "expected multiple TBs, got {}", r.tb_count);
        }
    }
}

/// The report's code-size and TB-count fields are plausible and the
/// translation cache actually caches (loop bodies translate once).
#[test]
fn translation_cache_reuses_blocks() {
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RCX, 10_000);
    b.asm.label("loop");
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.cmp_ri(Gpr::RCX, 0);
    b.asm.jcc_to(Cond::Ne, "loop");
    b.asm.hlt();
    let bin = b.finish().unwrap();
    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, cost());
    let r = emu.run(10_000_000).unwrap();
    assert!(r.tb_count <= 4, "10k iterations must reuse the cached TB, got {}", r.tb_count);
    assert!(r.code_bytes > 0);
    assert!(r.stats.insns > 10_000);
}
