//! End-to-end litmus runs through the complete DBT pipeline.
//!
//! Compiles litmus programs to guest binaries, executes them under the
//! *correct* emulator setups across many interleaving staggers, and checks
//! the soundness direction of Theorem 1 dynamically: every behavior
//! observed operationally must be allowed by the axiomatic x86 model.
//! (The machine is operationally TSO, so the observable set is a subset of
//! what the Arm model would allow on silicon — containment in the x86 set
//! is exactly what a correct x86 emulator must guarantee; see DESIGN.md
//! §10.)

use risotto::core::{Emulator, Setup};
use risotto::host::CostModel;
use risotto::litmus::{behaviors, corpus, Behavior, Program};
use risotto::memmodel::X86Tso;
use risotto::workloads::litmus_compile::compile_litmus;
use std::collections::BTreeSet;

/// Runs one compiled litmus program under a setup and returns the
/// observed behavior.
fn run_once(prog: &Program, setup: Setup, delays: &[u64]) -> Behavior {
    let compiled = compile_litmus(prog, delays);
    let mut emu =
        Emulator::new(&compiled.binary, setup, compiled.threads, CostModel::thunderx2_like());
    emu.run(50_000_000).unwrap_or_else(|e| panic!("{} under {}: {e}", prog.name, setup.name()));
    compiled.observe(emu.mem())
}

/// Sweeps interleaving staggers; asserts containment in the x86-allowed
/// set; returns the distinct observed behaviors.
fn sweep(prog: &Program, setup: Setup) -> BTreeSet<Behavior> {
    let allowed = behaviors(prog, &X86Tso::new());
    let mut seen = BTreeSet::new();
    let staggers: &[&[u64]] = &[
        &[0, 0],
        &[0, 40],
        &[40, 0],
        &[0, 7],
        &[7, 0],
        &[13, 11],
        &[3, 90],
        &[90, 3],
        &[0, 200],
        &[200, 0],
    ];
    for delays in staggers {
        let obs = run_once(prog, setup, delays);
        assert!(
            allowed.iter().any(|b| b.mem == obs.mem && b.regs == obs.regs),
            "{} under {} (delays {:?}): observed {:?} is NOT x86-allowed",
            prog.name,
            setup.name(),
            delays,
            obs
        );
        seen.insert(obs);
    }
    seen
}

#[test]
fn correct_setups_stay_within_x86_behaviors() {
    for prog in [corpus::mp(), corpus::sb(), corpus::sb_fenced(), corpus::lb(), corpus::s_test()] {
        for setup in [Setup::Qemu, Setup::TcgVer, Setup::Risotto, Setup::Native] {
            sweep(&prog, setup);
        }
    }
}

#[test]
fn rmw_litmus_through_the_dbt() {
    for prog in [corpus::mpq_x86(), corpus::sbq_x86(), corpus::sbal_x86()] {
        for setup in [Setup::Qemu, Setup::TcgVer, Setup::Risotto] {
            sweep(&prog, setup);
        }
    }
}

/// The staggers actually explore different interleavings: on SB, multiple
/// distinct outcomes must be observed (including at least one where some
/// thread misses the other's store).
#[test]
fn staggers_explore_interleavings() {
    let outcomes = sweep(&corpus::sb(), Setup::Risotto);
    assert!(outcomes.len() >= 2, "expected several SB outcomes across staggers, got {outcomes:?}");
    // And the store-buffer machine can produce the TSO-weak one (a=b=0)
    // under a simultaneous start.
    let weak = outcomes.iter().any(|b| b.reg(0, corpus::A) == 0 && b.reg(1, corpus::B) == 0);
    assert!(weak, "the store-buffering outcome should be observable operationally");
}

/// Deterministic replay: same program, setup and stagger → identical
/// behavior (the simulator is fully reproducible).
#[test]
fn runs_are_deterministic() {
    let p = corpus::mp();
    let a = run_once(&p, Setup::Risotto, &[5, 9]);
    let b = run_once(&p, Setup::Risotto, &[5, 9]);
    assert_eq!(a, b);
}
