//! The translation-verifier gate (docs/VERIFIER.md).
//!
//! Three claims are tested over the full Fig. 12 kernel corpus and the
//! litmus suite:
//!
//! 1. **Zero false positives** — every block the real pipeline produces,
//!    under every setup's frontend/optimizer pairing, passes all three
//!    verifier passes; and every litmus program runs end-to-end through
//!    the DBT at `VerifyLevel::Full` with `verify.violations == 0`.
//! 2. **Mutation kill rate** — seeded mutants of the optimized IR
//!    (drop one fence, swap one fence across an adjacent access,
//!    downgrade one fence) and of the encoded bytes (flip one byte) are
//!    each flagged by the verifier. 100% of generated mutants must die.
//! 3. **Fault containment** — an injected install-time corruption
//!    ([`FaultPlan::corrupt_install_at`]) is caught by
//!    `VerifyLevel::Install` before the damaged code can dispatch, and
//!    the run still produces the fault-free result.
//!
//! `RISOTTO_VERIFY_SMOKE=1` bounds the sweep for CI (fewer blocks per
//! kernel, fewer litmus staggers).

use risotto::core::{Emulator, FaultPlan, Setup, VerifyLevel};
use risotto::guest::{GuestBinary, TEXT_BASE};
use risotto::host::{check_encoding, lower_block, BackendConfig, CostModel, HostInsn, RmwStyle};
use risotto::litmus::corpus;
use risotto::memmodel::FenceKind;
use risotto::tcg::{
    optimize_with, translate_block, verify, FrontendConfig, OptPolicy, PassConfig, TbExit,
    TcgBlock, TcgOp,
};
use risotto::workloads::kernels;
use risotto::workloads::litmus_compile::compile_litmus;

fn smoke() -> bool {
    std::env::var("RISOTTO_VERIFY_SMOKE").is_ok_and(|v| v == "1")
}

/// The frontend/optimizer pairings the engine's setups use.
fn configs() -> [(FrontendConfig, OptPolicy); 4] {
    [
        (FrontendConfig::risotto(), OptPolicy::Verified),
        (FrontendConfig::tcg_ver(), OptPolicy::Verified),
        (FrontendConfig::qemu(), OptPolicy::QemuUnsound),
        (FrontendConfig::no_fences(), OptPolicy::QemuUnsound),
    ]
}

fn fetcher(bin: &GuestBinary) -> impl Fn(u64) -> [u8; 16] + '_ {
    move |addr: u64| {
        let mut w = [0u8; 16];
        for (i, slot) in w.iter_mut().enumerate() {
            let byte = addr
                .checked_sub(TEXT_BASE)
                .and_then(|off| off.checked_add(i as u64))
                .and_then(|off| usize::try_from(off).ok())
                .and_then(|off| bin.text.get(off));
            if let Some(&b) = byte {
                *slot = b;
            }
        }
        w
    }
}

/// BFS over the static control flow from the entry point: every block
/// the tier-1 pipeline would translate, up to `cap` blocks.
fn discover_blocks(bin: &GuestBinary, cfg: FrontendConfig, cap: usize) -> Vec<TcgBlock> {
    let fetch = fetcher(bin);
    let mut seen = std::collections::HashSet::new();
    let mut queue = vec![bin.entry];
    let mut blocks = Vec::new();
    while let Some(pc) = queue.pop() {
        if blocks.len() >= cap || !seen.insert(pc) {
            continue;
        }
        let Ok(block) = translate_block(pc, cfg, &fetch) else {
            continue; // PLT stubs / data — the engine quarantines these too
        };
        match block.exit {
            TbExit::Jump(t) => queue.push(t),
            TbExit::CondJump { taken, fallthrough, .. } => {
                queue.push(taken);
                queue.push(fallthrough);
            }
            TbExit::Syscall { next } => queue.push(next),
            TbExit::JumpReg(_) | TbExit::Halt => {}
        }
        blocks.push(block);
    }
    blocks
}

/// Runs the three verifier passes on an optimized block exactly as the
/// engine's `VerifyLevel::Full` hook does.
fn full_verify(
    reference: &TcgBlock,
    optimized: &TcgBlock,
    cfg: FrontendConfig,
    policy: OptPolicy,
    code: &[HostInsn],
    bytes: &[u8],
) -> Result<(), risotto::tcg::VerifyError> {
    verify::lint(optimized, false)?;
    verify::check_obligations(reference, optimized, cfg.fences, policy)?;
    check_encoding(optimized, code, bytes, BackendConfig::dbt(RmwStyle::Casal))
}

fn encode_all(code: &[HostInsn]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in code {
        i.encode(&mut bytes);
    }
    bytes
}

/// The translated + optimized + lowered corpus for one kernel/config.
struct Translated {
    reference: TcgBlock,
    optimized: TcgBlock,
    code: Vec<HostInsn>,
    bytes: Vec<u8>,
}

fn translate_corpus(bin: &GuestBinary, cfg: FrontendConfig, policy: OptPolicy) -> Vec<Translated> {
    let cap = if smoke() { 12 } else { 64 };
    discover_blocks(bin, cfg, cap)
        .into_iter()
        .map(|reference| {
            let mut optimized = reference.clone();
            optimize_with(&mut optimized, policy, PassConfig::all());
            let code = lower_block(&optimized, BackendConfig::dbt(RmwStyle::Casal))
                .expect("pipeline blocks lower");
            let bytes = encode_all(&code);
            Translated { reference, optimized, code, bytes }
        })
        .collect()
}

#[test]
fn clean_kernel_corpus_has_zero_violations() {
    let scale = if smoke() { 16 } else { 64 };
    let mut checked = 0usize;
    for w in kernels::all() {
        let bin = (w.build)(scale, 2);
        for (cfg, policy) in configs() {
            for t in translate_corpus(&bin, cfg, policy) {
                full_verify(&t.reference, &t.optimized, cfg, policy, &t.code, &t.bytes)
                    .unwrap_or_else(|e| {
                        panic!("false positive in {} ({:?}): {e}", w.name, cfg.fences)
                    });
                checked += 1;
            }
        }
    }
    assert!(checked >= 100, "corpus too small to be meaningful: {checked} blocks");
}

/// Positions of `Fence` ops in a block.
fn fence_positions(block: &TcgBlock) -> Vec<usize> {
    block
        .ops
        .iter()
        .enumerate()
        .filter_map(|(i, op)| matches!(op, TcgOp::Fence(_)).then_some(i))
        .collect()
}

/// A fence strictly weaker than `k` under `tcg_at_least`, if one exists
/// (none for `Facq`/`Frel`, which every TCG fence already covers).
fn weaker_than(k: FenceKind) -> Option<FenceKind> {
    FenceKind::TCG_ALL.iter().copied().find(|w| !w.tcg_at_least(k))
}

#[test]
fn verifier_kills_every_fence_and_encoding_mutant() {
    let scale = if smoke() { 16 } else { 64 };
    let (cfg, policy) = (FrontendConfig::risotto(), OptPolicy::Verified);
    let (mut drops, mut swaps, mut downgrades, mut corruptions) = (0usize, 0usize, 0usize, 0usize);
    for w in kernels::all() {
        let bin = (w.build)(scale, 2);
        for t in translate_corpus(&bin, cfg, policy) {
            for i in fence_positions(&t.optimized) {
                // Mutant 1: drop the fence.
                let mut m = t.optimized.clone();
                m.ops.remove(i);
                assert!(
                    verify::check_obligations(&t.reference, &m, cfg.fences, policy).is_err(),
                    "{}: dropped fence at op {i} survived",
                    w.name
                );
                drops += 1;
                // Mutant 2: swap the fence across an adjacent memory
                // access (reorder); only meaningful when one is adjacent.
                if i + 1 < t.optimized.ops.len() && t.optimized.ops[i + 1].is_memory_access() {
                    let mut m = t.optimized.clone();
                    m.ops.swap(i, i + 1);
                    assert!(
                        verify::check_obligations(&t.reference, &m, cfg.fences, policy).is_err(),
                        "{}: fence reordered across access at op {i} survived",
                        w.name
                    );
                    swaps += 1;
                }
                // Mutant 3: downgrade to a strictly weaker fence.
                let TcgOp::Fence(k) = t.optimized.ops[i] else { unreachable!() };
                if let Some(weaker) = weaker_than(k) {
                    let mut m = t.optimized.clone();
                    m.ops[i] = TcgOp::Fence(weaker);
                    assert!(
                        verify::check_obligations(&t.reference, &m, cfg.fences, policy).is_err(),
                        "{}: fence {k:?} downgraded to {weaker:?} at op {i} survived",
                        w.name
                    );
                    downgrades += 1;
                }
            }
            // Mutant 4: corrupt one encoded byte (first, middle, last).
            for off in [0, t.bytes.len() / 2, t.bytes.len() - 1] {
                let mut bad = t.bytes.clone();
                bad[off] ^= 0xff;
                assert!(
                    check_encoding(
                        &t.optimized,
                        &t.code,
                        &bad,
                        BackendConfig::dbt(RmwStyle::Casal)
                    )
                    .is_err(),
                    "{}: corrupted byte {off} survived",
                    w.name
                );
                corruptions += 1;
            }
        }
    }
    assert!(drops >= 20, "too few fence-drop mutants: {drops}");
    assert!(swaps >= 5, "too few reorder mutants: {swaps}");
    assert!(downgrades >= 20, "too few downgrade mutants: {downgrades}");
    assert!(corruptions >= 50, "too few byte mutants: {corruptions}");
}

#[test]
fn litmus_corpus_runs_clean_at_full_verification() {
    let staggers: &[&[u64]] = if smoke() {
        &[&[0, 0], &[0, 7]]
    } else {
        &[&[0, 0], &[0, 40], &[40, 0], &[0, 7], &[7, 0], &[13, 11]]
    };
    let mut checked_total = 0u64;
    for prog in [corpus::mp(), corpus::sb(), corpus::sb_fenced(), corpus::lb(), corpus::iriw()] {
        for setup in [Setup::Qemu, Setup::TcgVer, Setup::Risotto] {
            for delays in staggers {
                let compiled = compile_litmus(&prog, delays);
                let mut emu = Emulator::new(
                    &compiled.binary,
                    setup,
                    compiled.threads,
                    CostModel::thunderx2_like(),
                );
                emu.set_verify(VerifyLevel::Full);
                emu.run(50_000_000)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", prog.name, setup.name()));
                let m = emu.metrics();
                assert_eq!(
                    m.counter("verify.violations"),
                    0,
                    "false positive: {} under {}",
                    prog.name,
                    setup.name()
                );
                assert!(m.counter("verify.checked") > 0, "verifier did not run");
                checked_total += m.counter("verify.checked");
            }
        }
    }
    assert!(checked_total > 0);
}

#[test]
fn injected_install_corruption_is_caught_before_dispatch() {
    let w = kernels::all().into_iter().find(|w| w.name == "histogram").expect("histogram kernel");
    let bin = (w.build)(64, 2);
    let fuel = 2_000_000_000;

    let mut clean = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    clean.set_verify(VerifyLevel::Off);
    let reference = clean.run(fuel).expect("clean run");

    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    emu.set_verify(VerifyLevel::Install);
    emu.set_fault_plan(FaultPlan::seeded(7).corrupt_install_at(0).corrupt_install_at(3));
    let report = emu.run(fuel).expect("verified run recovers");

    // The damaged installs were discarded before dispatch: results match
    // the fault-free reference exactly.
    assert_eq!(report.exit_vals, reference.exit_vals);
    assert_eq!(report.output, reference.output);

    let m = emu.metrics();
    assert_eq!(m.counter("verify.violations"), 2, "both corruptions must be flagged");
    assert_eq!(m.counter("verify.encoding_violations"), 2);
    assert!(m.counter("verify.checked") > 0);
    assert!(m.counter("fault.injected") >= 2);
    assert!(report.fallback_blocks >= 1, "rejected installs fall back to the interpreter");
    // Ordinal 0 corrupts `main`'s entry block, which executes exactly once
    // (interpreted, never revisited); only the re-reached loop block is
    // re-translated after its quarantine entry.
    assert!(report.retranslations >= 1, "quarantined pcs are re-translated");
}

#[test]
fn verify_off_skips_all_checks() {
    let w = &kernels::all()[0];
    let bin = (w.build)(16, 2);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    emu.set_verify(VerifyLevel::Off);
    emu.run(2_000_000_000).expect("run");
    let m = emu.metrics();
    assert_eq!(m.counter("verify.checked"), 0);
    assert_eq!(m.counter("verify.violations"), 0);
}
