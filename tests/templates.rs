//! Acceptance tests for the tier-0 IR-less template translator (the
//! PR's tentpole).
//!
//! The contract comes in three layers, mirroring how the Fig. 7/8
//! mapping schemes are verified:
//!
//! 1. **Stream equivalence** — for every guest instruction kind, every
//!    frontend fence scheme, both RMW styles and both host backends, the
//!    template's ordering-relevant instruction stream (fences, guest
//!    memory accesses, exclusives, CAS/LDADD, helper calls) is identical
//!    to what the tier-1 frontend + unoptimized backend lowering emits.
//! 2. **Theorem 1 per template** — the templates themselves, projected
//!    to litmus instructions, form a mapping scheme; that scheme is run
//!    through the executable Theorem-1 checker against the axiomatic
//!    models, per backend, exactly like the Fig. 7 schemes. This is the
//!    *static* verification that lets tier-0 skip the per-block
//!    Pass 1/2 verifier at runtime.
//! 3. **End-to-end equivalence** — kernels, litmus programs and
//!    hand-written instruction batteries produce bit-identical
//!    guest-visible results with tier-0 enabled vs disabled, on both
//!    backends, with the Pass 3 install read-back at Full level; plus a
//!    promotion/demotion churn test across all three tiers.

use risotto::core::{BackendKind, Emulator, FaultPlan, FaultSite, Setup, TierConfig, VerifyLevel};
use risotto::guest::{AluOp, Cond, FpOp, GelfBuilder, Gpr, Insn, Operand};
use risotto::host::{
    lower_block_with_dialect, ArmOrdering, BackendConfig, Dmb, HostInsn, MemOrder,
    OrderingLowering, RmwStyle, ENV_BASE, SPILL_BASE,
};
use risotto::host_tso::TsoOrdering;
use risotto::litmus::{behaviors, corpus, Instr, Program, RmwKind};
use risotto::mappings::check::check_mapping;
use risotto::mappings::scheme::MappingScheme;
use risotto::memmodel::{Arm, FenceKind, X86Tso};
use risotto::tcg::{translate_block, FrontendConfig};
use risotto::template::insn_template;
use risotto::template::translate_block_template;
use risotto::workloads::kernels;
use risotto::workloads::litmus_compile::compile_litmus;

const FUEL: u64 = 2_000_000_000;

/// Serves `bytes` as guest text at `base` (decode windows zero-padded).
fn fetch_of(bytes: Vec<u8>, base: u64) -> impl Fn(u64) -> [u8; 16] {
    move |pc| {
        let mut w = [0u8; 16];
        if let Some(off) = pc.checked_sub(base).and_then(|o| usize::try_from(o).ok()) {
            for (i, slot) in w.iter_mut().enumerate() {
                if let Some(&b) = bytes.get(off + i) {
                    *slot = b;
                }
            }
        }
        w
    }
}

/// A tier-0-only policy: templates serve everything, nothing ever warms
/// up into tier-1 (`u64::MAX` thresholds never fire).
fn tier0_only() -> TierConfig {
    TierConfig { hot_threshold: u64::MAX, warm_threshold: Some(u64::MAX), ..TierConfig::default() }
}

/// A full three-tier policy with CI-scale thresholds.
fn three_tier() -> TierConfig {
    TierConfig { hot_threshold: 16, warm_threshold: Some(4), ..TierConfig::default() }
}

// ---------------------------------------------------------------------
// 1. Stream equivalence: templates vs tier-1, per instruction kind
// ---------------------------------------------------------------------

/// One representative of every guest instruction kind (and of every
/// sub-case that changes the emitted template: each ALU op, each FP op,
/// each condition, reg vs imm operands, zero vs non-zero displacement).
fn insn_matrix() -> Vec<Insn> {
    let mut m = vec![
        Insn::MovRI { dst: Gpr::RAX, imm: 0x1234_5678_9abc_def0 },
        Insn::MovRR { dst: Gpr::RBX, src: Gpr::RCX },
        Insn::Load { dst: Gpr::RAX, base: Gpr::RBX, disp: 0 },
        Insn::Load { dst: Gpr::RAX, base: Gpr::RBX, disp: 24 },
        Insn::Store { base: Gpr::RBX, disp: 0, src: Gpr::RAX },
        Insn::Store { base: Gpr::RBX, disp: -8, src: Gpr::RAX },
        Insn::LoadB { dst: Gpr::RCX, base: Gpr::RDX, disp: 3 },
        Insn::StoreB { base: Gpr::RDX, disp: 5, src: Gpr::RCX },
        Insn::Lea { dst: Gpr::RSI, base: Gpr::RDI, disp: 40 },
        Insn::MulWide { src: Gpr::RBX },
        Insn::Div { src: Gpr::RCX },
        Insn::Cmp { a: Gpr::RAX, b: Operand::Reg(Gpr::RBX) },
        Insn::Cmp { a: Gpr::RAX, b: Operand::Imm(7) },
        Insn::Test { a: Gpr::RAX, b: Operand::Reg(Gpr::RBX) },
        Insn::LockCmpxchg { base: Gpr::RBX, disp: 0, src: Gpr::RCX },
        Insn::LockCmpxchg { base: Gpr::RBX, disp: 16, src: Gpr::RCX },
        Insn::LockXadd { base: Gpr::RBX, disp: 0, src: Gpr::RCX },
        Insn::Mfence,
        Insn::Nop,
        Insn::Jmp { rel: 32 },
        Insn::JmpReg { reg: Gpr::RAX },
        Insn::Call { rel: -16 },
        Insn::CallReg { reg: Gpr::RBX },
        Insn::Ret,
        Insn::Push { src: Gpr::RBP },
        Insn::Pop { dst: Gpr::RBP },
        Insn::Hlt,
        Insn::Syscall,
    ];
    for op in [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Mul,
    ] {
        m.push(Insn::Alu { op, dst: Gpr::RAX, src: Operand::Reg(Gpr::RBX) });
        m.push(Insn::Alu { op, dst: Gpr::RAX, src: Operand::Imm(13) });
    }
    for op in [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div, FpOp::Sqrt, FpOp::CvtIF, FpOp::CvtFI] {
        m.push(Insn::Fp { op, dst: Gpr::RAX, src: Gpr::RBX });
    }
    for cond in [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
        Cond::B,
        Cond::Ae,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
    ] {
        m.push(Insn::Jcc { cond, rel: 8 });
    }
    m
}

fn is_terminator(i: &Insn) -> bool {
    matches!(
        i,
        Insn::Jcc { .. }
            | Insn::Jmp { .. }
            | Insn::JmpReg { .. }
            | Insn::Call { .. }
            | Insn::CallReg { .. }
            | Insn::Ret
            | Insn::Hlt
            | Insn::Syscall
    )
}

/// An ordering-relevant event in a host instruction stream. Env/spill
/// traffic (`[ENV_BASE + …]`, `[SPILL_BASE + …]`) is private to the
/// translation and filtered out; everything the memory model can see is
/// kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Fence(Dmb),
    Access { load: bool, byte: bool, order: MemOrder },
    Ldxr { acquire: bool },
    Stxr { release: bool },
    Cas { acq_rel: bool },
    Ldadd,
    Hcall(u8),
}

fn project(insns: &[HostInsn]) -> Vec<Ev> {
    let mut out = Vec::new();
    for i in insns {
        match *i {
            HostInsn::Barrier(d) => out.push(Ev::Fence(d)),
            HostInsn::Ldr { base, order, .. } if base != ENV_BASE && base != SPILL_BASE => {
                out.push(Ev::Access { load: true, byte: false, order });
            }
            HostInsn::Str { base, order, .. } if base != ENV_BASE && base != SPILL_BASE => {
                out.push(Ev::Access { load: false, byte: false, order });
            }
            HostInsn::LdrB { base, .. } if base != ENV_BASE && base != SPILL_BASE => {
                out.push(Ev::Access { load: true, byte: true, order: MemOrder::Plain });
            }
            HostInsn::StrB { base, .. } if base != ENV_BASE && base != SPILL_BASE => {
                out.push(Ev::Access { load: false, byte: true, order: MemOrder::Plain });
            }
            HostInsn::Ldxr { acquire, .. } => out.push(Ev::Ldxr { acquire }),
            HostInsn::Stxr { release, .. } => out.push(Ev::Stxr { release }),
            HostInsn::Cas { acq_rel, .. } => out.push(Ev::Cas { acq_rel }),
            HostInsn::LdaddAl { .. } => out.push(Ev::Ldadd),
            HostInsn::Hcall { helper } => out.push(Ev::Hcall(helper)),
            _ => {}
        }
    }
    out
}

/// Every template's ordering-relevant stream equals tier-1's, across
/// all four frontend fence schemes, both RMW styles and both backends.
/// This pins the templates to the *same* verified mapping placement the
/// IR pipeline implements — including the deliberately erroneous QEMU
/// and no-fences schemes, which tier-0 must reproduce, bugs and all.
#[test]
fn template_streams_match_tier1_ordering_projection() {
    let dialects: [(&str, &dyn OrderingLowering); 2] =
        [("arm", &ArmOrdering), ("tso", &TsoOrdering)];
    let cfgs = [
        ("qemu", FrontendConfig::qemu()),
        ("risotto", FrontendConfig::risotto()),
        ("tcg-ver", FrontendConfig::tcg_ver()),
        ("no-fences", FrontendConfig::no_fences()),
    ];
    let mut checked = 0usize;
    for (host, ord) in dialects {
        for (cname, cfg) in cfgs {
            for rmw in [RmwStyle::Casal, RmwStyle::Rmw2Fenced] {
                let bcfg = BackendConfig::dbt(rmw);
                for insn in insn_matrix() {
                    let mut bytes = Vec::new();
                    insn.encode(&mut bytes);
                    if !is_terminator(&insn) {
                        Insn::Hlt.encode(&mut bytes);
                    }
                    let fetch = fetch_of(bytes, 0x4000);
                    let block = translate_block(0x4000, cfg, &fetch)
                        .unwrap_or_else(|e| panic!("{insn:?}: tier-1 frontend: {e}"));
                    let tier1 = lower_block_with_dialect(&block, bcfg, ord)
                        .unwrap_or_else(|e| panic!("{insn:?}: tier-1 lowering: {e}"))
                        .insns;
                    let tier0 = translate_block_template(0x4000, cfg, bcfg, ord, &fetch)
                        .unwrap_or_else(|e| panic!("{insn:?}: template: {e}"))
                        .code;
                    assert_eq!(
                        project(&tier0),
                        project(&tier1),
                        "{insn:?} under {cname}/{host}/{rmw:?}: \
                         template ordering stream diverges from tier-1"
                    );
                    checked += 1;
                }
            }
        }
    }
    // 28 singleton kinds + 18 ALU + 7 FP + 12 Jcc = 65 per combination.
    assert_eq!(checked, 65 * 2 * 4 * 2, "matrix did not cover the full template table");
}

// ---------------------------------------------------------------------
// 2. Theorem 1 per template, per backend
// ---------------------------------------------------------------------

/// The templates as a litmus mapping scheme: each x86-level litmus
/// instruction is mapped by instantiating the *actual* template for a
/// representative guest instruction and projecting the host stream onto
/// the litmus alphabet of the target model.
struct TemplateScheme<'a> {
    nm: String,
    cfg: FrontendConfig,
    bcfg: BackendConfig,
    ord: &'a dyn OrderingLowering,
    /// Projection alphabet: `true` targets the x86-TSO model (`MFENCE`,
    /// `X86Lock`), `false` the Arm model (`DMB*`, `casal`, exclusives).
    tso_host: bool,
}

impl TemplateScheme<'_> {
    fn fence_of(&self, d: Dmb) -> FenceKind {
        if self.tso_host {
            // The TSO dialect only ever emits the full barrier.
            assert_eq!(d, Dmb::Ff, "TSO templates must not emit partial barriers");
            FenceKind::MFence
        } else {
            match d {
                Dmb::Ld => FenceKind::DmbLd,
                Dmb::St => FenceKind::DmbSt,
                Dmb::Ff => FenceKind::DmbFf,
            }
        }
    }

    /// Instantiates the template for `g` and projects it around the
    /// litmus payload `body(out)` invoked once per guest memory event.
    fn walk(&self, g: &Insn, mut body: impl FnMut(&HostInsn, &mut Vec<Instr>)) -> Vec<Instr> {
        let host = insn_template(g, 0x4000, self.cfg, self.bcfg, self.ord)
            .unwrap_or_else(|e| panic!("{}: template for {g:?}: {e}", self.nm));
        let mut out = Vec::new();
        let mut pending_acq = false;
        for i in &host {
            match *i {
                HostInsn::Barrier(d) => out.push(Instr::Fence(self.fence_of(d))),
                HostInsn::Ldxr { acquire, .. } => pending_acq = acquire,
                _ => body(i, &mut out),
            }
        }
        let _ = pending_acq;
        out
    }
}

impl MappingScheme for TemplateScheme<'_> {
    fn name(&self) -> &str {
        &self.nm
    }

    fn map_instr(&self, instr: &Instr) -> Vec<Instr> {
        use risotto::memmodel::AccessMode;
        match instr {
            Instr::Load { dst, loc, mode: AccessMode::Plain } => {
                let g = Insn::Load { dst: Gpr::RAX, base: Gpr::RBX, disp: 0 };
                self.walk(&g, |i, out| {
                    if let HostInsn::Ldr { base, .. } = *i {
                        if base != ENV_BASE && base != SPILL_BASE {
                            out.push(Instr::Load { dst: *dst, loc: *loc, mode: AccessMode::Plain });
                        }
                    }
                })
            }
            Instr::Store { loc, val, mode: AccessMode::Plain } => {
                let g = Insn::Store { base: Gpr::RBX, disp: 0, src: Gpr::RAX };
                self.walk(&g, |i, out| {
                    if let HostInsn::Str { base, .. } = *i {
                        if base != ENV_BASE && base != SPILL_BASE {
                            out.push(Instr::Store {
                                loc: *loc,
                                val: val.clone(),
                                mode: AccessMode::Plain,
                            });
                        }
                    }
                })
            }
            Instr::Rmw { dst, loc, expected, desired, kind: RmwKind::X86Lock } => {
                let g = Insn::LockCmpxchg { base: Gpr::RBX, disp: 0, src: Gpr::RCX };
                let rmw = |kind: RmwKind| Instr::Rmw {
                    dst: *dst,
                    loc: *loc,
                    expected: expected.clone(),
                    desired: desired.clone(),
                    kind,
                };
                let host = insn_template(&g, 0x4000, self.cfg, self.bcfg, self.ord)
                    .unwrap_or_else(|e| panic!("{}: template for {g:?}: {e}", self.nm));
                let mut out = Vec::new();
                let mut pending_acq = false;
                for i in &host {
                    match *i {
                        HostInsn::Barrier(d) => out.push(Instr::Fence(self.fence_of(d))),
                        HostInsn::Cas { acq_rel, .. } => {
                            assert!(acq_rel, "{}: plain CAS in an RMW template", self.nm);
                            out.push(rmw(if self.tso_host {
                                RmwKind::X86Lock
                            } else {
                                RmwKind::ArmCasal
                            }));
                        }
                        HostInsn::Ldxr { acquire, .. } => pending_acq = acquire,
                        HostInsn::Stxr { release, .. } => {
                            out.push(rmw(RmwKind::ArmLxsx { acq: pending_acq, rel: release }));
                        }
                        HostInsn::Hcall { .. } => {
                            // The RMW helpers execute atomically with SC
                            // semantics on the simulated machine.
                            if self.tso_host {
                                out.push(rmw(RmwKind::X86Lock));
                            } else {
                                out.push(Instr::Fence(FenceKind::DmbFf));
                                out.push(rmw(RmwKind::ArmLxsx { acq: true, rel: true }));
                                out.push(Instr::Fence(FenceKind::DmbFf));
                            }
                        }
                        _ => {}
                    }
                }
                out
            }
            Instr::Fence(FenceKind::MFence) => self.walk(&Insn::Mfence, |_, _| {}),
            Instr::Let { .. } => vec![instr.clone()],
            other => panic!("{}: not an x86 instruction: {other:?}", self.nm),
        }
    }
}

fn theorem1_suite() -> Vec<Program> {
    vec![
        corpus::mp(),
        corpus::sb(),
        corpus::sb_fenced(),
        corpus::lb(),
        corpus::s_test(),
        corpus::mpq_x86(),
        corpus::sbq_x86(),
        corpus::sbal_x86(),
    ]
}

/// Every template of the verified configurations passes the executable
/// Theorem-1 check per backend: projected to litmus instructions, the
/// template translation of each corpus program (including the paper's
/// RMW counterexamples) introduces no new behavior under the corrected
/// Arm model, and none under x86-TSO for the TSO backend. This is the
/// static verification that replaces the per-block Pass 1/2 runs for
/// tier-0 code.
#[test]
fn verified_templates_satisfy_theorem1_per_backend() {
    let x86 = X86Tso::new();
    let arm = Arm::corrected();
    let cfgs = [("risotto", FrontendConfig::risotto()), ("tcg-ver", FrontendConfig::tcg_ver())];
    for prog in theorem1_suite() {
        for (cname, cfg) in cfgs {
            for rmw in [RmwStyle::Casal, RmwStyle::Rmw2Fenced] {
                let s = TemplateScheme {
                    nm: format!("tier0-templates({cname}/arm/{rmw:?})"),
                    cfg,
                    bcfg: BackendConfig::dbt(rmw),
                    ord: &ArmOrdering,
                    tso_host: false,
                };
                check_mapping(&s, &prog, &x86, &arm)
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", s.nm, prog.name));
            }
            let s = TemplateScheme {
                nm: format!("tier0-templates({cname}/tso)"),
                cfg,
                bcfg: BackendConfig::dbt(RmwStyle::Casal),
                ord: &TsoOrdering,
                tso_host: true,
            };
            check_mapping(&s, &prog, &x86, &x86)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", s.nm, prog.name));
        }
    }
}

/// Negative control: the fence-free template configuration must FAIL
/// Theorem 1 on MP under the Arm model — if it passed, the checker
/// would be vacuous for template schemes.
#[test]
fn fence_free_templates_fail_theorem1_on_arm() {
    let s = TemplateScheme {
        nm: "tier0-templates(no-fences/arm)".into(),
        cfg: FrontendConfig::no_fences(),
        bcfg: BackendConfig::dbt(RmwStyle::Casal),
        ord: &ArmOrdering,
        tso_host: false,
    };
    assert!(
        check_mapping(&s, &corpus::mp(), &X86Tso::new(), &Arm::corrected()).is_err(),
        "fence-free templates must introduce behaviors on MP"
    );
}

// ---------------------------------------------------------------------
// 3. End-to-end equivalence and tier churn
// ---------------------------------------------------------------------

fn run_with(
    bin: &risotto::guest::GuestBinary,
    backend: BackendKind,
    tiers: Option<TierConfig>,
) -> (risotto::core::Report, u64, u64) {
    let mut emu = Emulator::new(bin, Setup::Risotto, 2, backend.cost_model());
    emu.set_backend(backend);
    emu.set_verify(VerifyLevel::Full);
    emu.set_tiering(tiers);
    let r = emu.run(FUEL).unwrap_or_else(|e| panic!("{} backend: {e}", backend.name()));
    let m = emu.metrics();
    (r, m.counter("verify.violations"), m.counter("template.blocks"))
}

/// All 16 kernels, both backends: a tier-0-only run is bit-identical to
/// the tier-1 run, every block was served by a template, and the Pass 3
/// install read-back (active at `VerifyLevel::Full`) flagged nothing.
#[test]
fn kernels_are_bit_identical_with_tier0_on_both_backends() {
    for w in kernels::all() {
        let bin = (w.build)(8, 2);
        for backend in [BackendKind::Arm, BackendKind::Tso] {
            let (r1, v1, t1) = run_with(&bin, backend, None);
            let (r0, v0, t0) = run_with(&bin, backend, Some(tier0_only()));
            assert_eq!(
                r0.exit_vals,
                r1.exit_vals,
                "{} on {}: tier-0 exit values diverge",
                w.name,
                backend.name()
            );
            assert_eq!(
                r0.output,
                r1.output,
                "{} on {}: tier-0 output diverges",
                w.name,
                backend.name()
            );
            assert_eq!(v1, 0, "{}: tier-1 verifier flagged a clean pipeline", w.name);
            assert_eq!(v0, 0, "{}: tier-0 install read-back flagged a clean template", w.name);
            assert_eq!(t1, 0, "{}: tier-1 run used templates", w.name);
            assert!(t0 > 0, "{}: tier-0 run never used a template", w.name);
            assert_eq!(r0.template.promotions, 0, "{}: tier-0-only run promoted", w.name);
            assert!(r0.template.insns >= r0.template.blocks, "{}: stats inconsistent", w.name);
        }
    }
}

/// Litmus programs executed through tier-0 templates stay within the
/// x86-allowed behavior set on both backends, across interleaving
/// staggers — the dynamic counterpart of the Theorem-1 check above.
#[test]
fn litmus_through_tier0_stays_within_x86_behaviors() {
    let staggers: &[&[u64]] = &[&[0, 0], &[0, 40], &[40, 0], &[13, 11]];
    let progs = [
        corpus::mp(),
        corpus::sb(),
        corpus::sb_fenced(),
        corpus::lb(),
        corpus::mpq_x86(),
        corpus::sbal_x86(),
    ];
    for prog in progs {
        let allowed = behaviors(&prog, &X86Tso::new());
        for backend in [BackendKind::Arm, BackendKind::Tso] {
            for delays in staggers {
                let compiled = compile_litmus(&prog, delays);
                let mut emu = Emulator::new(
                    &compiled.binary,
                    Setup::Risotto,
                    compiled.threads,
                    backend.cost_model(),
                );
                emu.set_backend(backend);
                emu.set_verify(VerifyLevel::Full);
                emu.set_tiering(Some(tier0_only()));
                emu.run(50_000_000).unwrap_or_else(|e| {
                    panic!("{} via tier-0 on {}: {e}", prog.name, backend.name())
                });
                let obs = compiled.observe(emu.mem());
                assert!(
                    allowed.iter().any(|b| b.mem == obs.mem && b.regs == obs.regs),
                    "{} via tier-0 on {} (delays {delays:?}): {obs:?} is NOT x86-allowed",
                    prog.name,
                    backend.name()
                );
                assert!(emu.template_stats().blocks > 0, "{}: no templates used", prog.name);
            }
        }
    }
}

/// Tier churn on a single hot pc: the loop head starts as a tier-0
/// template, warms into tier-1, promotes into a tier-2 superblock, and
/// TB-cache strikes keep demoting it back to a cold tier-0 refill. The
/// run stays bit-identical to an untiered one and every transition
/// leaves the chain graph clean (no chain word into freed code).
#[test]
fn tier_churn_on_same_pc_is_clean_and_bit_identical() {
    // Two-block hot loop: the conditional exit of the head is decisively
    // biased (taken only on the final iteration), so tier-2 trace
    // selection finds a cyclic head→body→head trace of length 2.
    let mut b = GelfBuilder::new("main");
    b.asm.label("main");
    b.asm.mov_ri(Gpr::RCX, 60_000);
    b.asm.mov_ri(Gpr::RAX, 0);
    b.asm.label("loop");
    b.asm.alu_ri(AluOp::Add, Gpr::RAX, 3);
    b.asm.cmp_ri(Gpr::RCX, 1);
    b.asm.jcc_to(Cond::E, "last");
    b.asm.alu_ri(AluOp::Xor, Gpr::RAX, 0x5a);
    b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
    b.asm.jmp_to("loop");
    b.asm.label("last");
    b.asm.hlt();
    let bin = b.finish().expect("churn binary");

    let mut reference = Emulator::new(&bin, Setup::Risotto, 1, BackendKind::Arm.cost_model());
    let r1 = reference.run(FUEL).expect("reference run");

    let mut emu = Emulator::new(&bin, Setup::Risotto, 1, BackendKind::Arm.cost_model());
    emu.set_tiering(Some(TierConfig {
        hot_threshold: 8,
        warm_threshold: Some(2),
        ..TierConfig::default()
    }));
    // Background TB-cache strikes evict translations — including the
    // promoted superblock head — forcing cold tier-0 refills of the
    // same pc and another climb up the tier ladder.
    emu.set_fault_plan(FaultPlan::seeded(11).rate(FaultSite::TbCache, 400));
    let r = emu.run(FUEL).expect("churned run completes");

    assert_eq!(r.exit_vals, r1.exit_vals, "tier churn changed the architectural result");
    assert_eq!(r.output, r1.output);
    let stats = emu.template_stats();
    assert!(stats.blocks > 0, "loop never entered through a template");
    assert!(stats.promotions > 0, "no tier-0 → tier-1 promotion happened");
    assert!(r.sb.promotions > 0, "no tier-1 → tier-2 promotion happened");
    assert!(
        stats.blocks > stats.promotions,
        "every template promoted exactly once: eviction churn never refilled tier-0"
    );
    let bad = emu.validate_chains();
    assert!(bad.is_empty(), "dangling chain words after tier churn: {bad:x?}");
}

/// The three-tier configuration is bit-identical to tier-1 across all
/// kernels (the tier-0 analogue of the tier-2 acceptance test), with
/// real tier-0 → tier-1 promotions happening somewhere in the suite.
#[test]
fn three_tier_runs_match_tier1_on_all_kernels() {
    let mut total_promotions = 0u64;
    for w in kernels::all() {
        let bin = (w.build)(16, 2);
        let mut tier1 = Emulator::new(&bin, Setup::Risotto, 2, BackendKind::Arm.cost_model());
        let r1 = tier1.run(FUEL).unwrap_or_else(|e| panic!("{} (tier-1): {e}", w.name));

        let mut tiered = Emulator::new(&bin, Setup::Risotto, 2, BackendKind::Arm.cost_model());
        tiered.set_tiering(Some(three_tier()));
        let r3 = tiered.run(FUEL).unwrap_or_else(|e| panic!("{} (three-tier): {e}", w.name));

        assert_eq!(r3.exit_vals, r1.exit_vals, "{}: three-tier exit values diverge", w.name);
        assert_eq!(r3.output, r1.output, "{}: three-tier output diverges", w.name);
        assert!(r3.template.blocks > 0, "{}: tier-0 never served a block", w.name);
        let bad = tiered.validate_chains();
        assert!(bad.is_empty(), "{}: dangling chain words: {bad:x?}", w.name);
        total_promotions += r3.template.promotions;
    }
    assert!(total_promotions > 0, "no kernel ever promoted tier-0 → tier-1");
}
