//! Integration tests for the differential fuzzing subsystem
//! (DESIGN.md §13, docs/FUZZING.md): generator well-formedness,
//! corpus round-trips, minimizer laws, a bounded differential sweep
//! across all oracle configurations, fault-composed degradation, and
//! replay of the checked-in reproducer corpus.

use risotto::fuzz::{
    differential, fault_check, generate, minimize, parse_corpus, program_seed, random_fault_plan,
    to_corpus_string, GenConfig, ProgSpec, Stmt,
};
use risotto::guest::Interp;

/// Seeds used by the seeded property sweeps below. Fixed, so failures
/// name a replayable program.
fn sweep_seeds(n: u64, salt: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| program_seed(salt, i))
}

fn stmt_count(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::If { then_body, else_body, .. } => {
                1 + stmt_count(then_body) + stmt_count(else_body)
            }
            Stmt::Loop { body, .. } => 1 + stmt_count(body),
            _ => 1,
        })
        .sum()
}

fn spec_size(spec: &ProgSpec) -> usize {
    stmt_count(&spec.main)
        + spec.threads.iter().map(|b| stmt_count(b)).sum::<usize>()
        + spec.routines.iter().map(|b| stmt_count(b)).sum::<usize>()
}

fn contains_atomic(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::AtomicAdd { .. } | Stmt::CasAdd { .. } => true,
        Stmt::If { then_body, else_body, .. } => {
            contains_atomic(then_body) || contains_atomic(else_body)
        }
        Stmt::Loop { body, .. } => contains_atomic(body),
        _ => false,
    })
}

fn spec_has_atomic(spec: &ProgSpec) -> bool {
    contains_atomic(&spec.main)
        || spec.threads.iter().any(|b| contains_atomic(b))
        || spec.routines.iter().any(|b| contains_atomic(b))
}

/// Every generated spec validates, lowers, and terminates inside its own
/// declared interpreter step bound, with every core producing an exit
/// value (balanced spawn/join).
#[test]
fn generated_programs_are_wellformed_and_terminate() {
    let cfg = GenConfig::default();
    let mut multicore = 0;
    for seed in sweep_seeds(250, 0xA11) {
        let spec = generate(&cfg, seed);
        spec.validate().unwrap_or_else(|e| panic!("seed {seed:#x}: invalid spec: {e}"));
        let bin = spec.lower().unwrap_or_else(|e| panic!("seed {seed:#x}: lowering failed: {e}"));
        let mut interp = Interp::new(&bin);
        interp
            .run(spec.max_interp_steps())
            .unwrap_or_else(|e| panic!("seed {seed:#x}: exceeded its own step bound: {e:?}"));
        for t in 0..spec.cores() {
            // exit_val would be meaningless if the thread never halted;
            // the interpreter only reports Ok once every spawned thread
            // ran to completion, so reaching here is the assertion.
            let _ = interp.exit_val(t);
        }
        if !spec.threads.is_empty() {
            multicore += 1;
        }
    }
    assert!(multicore >= 40, "only {multicore}/250 programs were multi-core");
}

/// Corpus serialization round-trips exactly: parse(to_string(spec)) is
/// identity, for generated programs of every shape.
#[test]
fn corpus_round_trips_exactly() {
    let cfg = GenConfig::default();
    for seed in sweep_seeds(150, 0xC0) {
        let mut spec = generate(&cfg, seed);
        spec.note = format!("round-trip check for {seed:#x}");
        let text = to_corpus_string(&spec);
        let back = parse_corpus(&text)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: reparse failed: {e}\n{text}"));
        assert_eq!(back, spec, "seed {seed:#x}: corpus round-trip changed the spec");
    }
}

/// Hand-edited corpus text cannot smuggle in malformed programs: the
/// parser re-validates.
#[test]
fn corpus_parser_rejects_invalid_programs() {
    // Structurally fine, semantically invalid: xadd with k = 0.
    let text = "risotto-fuzz v1\nseed 0x1\nmain {\n  xadd s0 += 0x0\n}\n";
    assert!(parse_corpus(text).is_err(), "zero-increment atomic must be rejected");
    // Loop nesting too deep.
    let text = "risotto-fuzz v1\nseed 0x1\nmain {\n  loop 2 {\n    loop 2 {\n      loop 2 {\n        fence\n      }\n    }\n  }\n}\n";
    assert!(parse_corpus(text).is_err(), "triple-nested loop must be rejected");
    // Unknown register.
    let text = "risotto-fuzz v1\nseed 0x1\nmain {\n  mov r99 = 0x1\n}\n";
    assert!(parse_corpus(text).is_err(), "unknown register must be rejected");
}

/// Minimization preserves the predicate, only shrinks, and is
/// idempotent: re-minimizing a fixpoint changes nothing.
#[test]
fn minimizer_preserves_predicate_and_is_idempotent() {
    let cfg = GenConfig::default();
    let mut checked = 0;
    for seed in sweep_seeds(40, 0x317) {
        let spec = generate(&cfg, seed);
        if !spec_has_atomic(&spec) {
            continue;
        }
        checked += 1;
        let min = minimize(&spec, &spec_has_atomic, 50_000);
        assert!(spec_has_atomic(&min.spec), "seed {seed:#x}: minimization lost the predicate");
        assert!(min.spec.validate().is_ok(), "seed {seed:#x}: minimized spec invalid");
        assert!(
            spec_size(&min.spec) <= spec_size(&spec),
            "seed {seed:#x}: minimization grew the program"
        );
        // An atomic-containing fixpoint under this predicate is tiny.
        assert!(
            spec_size(&min.spec) <= 2,
            "seed {seed:#x}: fixpoint still has {} statements:\n{}",
            spec_size(&min.spec),
            to_corpus_string(&min.spec),
        );
        let again = minimize(&min.spec, &spec_has_atomic, 50_000);
        assert_eq!(again.spec, min.spec, "seed {seed:#x}: minimize is not idempotent");
        assert_eq!(again.accepted, 0, "seed {seed:#x}: second pass still found reductions");
    }
    assert!(checked >= 10, "only {checked}/40 programs contained atomics");
}

/// Bounded differential sweep: every configuration agrees with the
/// interpreter on every generated program, and the tier-2 configuration
/// visibly promotes on a healthy fraction of them.
#[test]
fn differential_sweep_finds_no_divergence() {
    let cfg = GenConfig::default();
    let mut promoted = 0u64;
    const N: u64 = 40;
    for seed in sweep_seeds(N, 0xD1F) {
        let spec = generate(&cfg, seed);
        let result = differential(&spec);
        assert!(
            result.divergences.is_empty(),
            "seed {seed:#x} diverged: {:?}\n{}",
            result.divergences,
            to_corpus_string(&spec),
        );
        assert_eq!(result.configs_run, 7, "seed {seed:#x}: oracle matrix incomplete");
        if result.promoted {
            promoted += 1;
        }
    }
    // The generator guarantees a hot loop per program and the harness
    // wires hot_threshold = 8, so promotion must be routine, not rare.
    assert!(promoted * 100 >= N * 25, "only {promoted}/{N} sweeps promoted a superblock");
}

/// Fault-composed runs degrade gracefully: no panic, and completed runs
/// match the fault-free reference exactly.
#[test]
fn fault_composition_degrades_gracefully() {
    let cfg = GenConfig::default();
    let mut completed = 0u64;
    for seed in sweep_seeds(25, 0xFA) {
        let spec = generate(&cfg, seed);
        match fault_check(&spec, random_fault_plan(seed)) {
            Ok(true) => completed += 1,
            Ok(false) => {} // typed error: accepted degradation
            Err(d) => panic!("seed {seed:#x}: fault contract violated: {d}"),
        }
    }
    // Background rates are low; most runs must recover and complete.
    assert!(completed >= 10, "only {completed}/25 fault-composed runs completed");
}

/// Replays every checked-in reproducer: the corpus must parse, agree
/// across all configurations, and keep its intended coverage properties.
#[test]
fn corpus_replay_stays_green() {
    let corpus: &[(&str, &str)] = &[
        ("store_store_fence", include_str!("corpus/store_store_fence.risotto")),
        ("spawn_cas_contention", include_str!("corpus/spawn_cas_contention.risotto")),
        ("hot_loop_promotion", include_str!("corpus/hot_loop_promotion.risotto")),
        ("cmpxchg_fail_path", include_str!("corpus/cmpxchg_fail_path.risotto")),
        // Found by the 10k acceptance run: f64 NaN *payload* propagation
        // differed between the interpreter and every DBT tier until all
        // four evaluation sites were unified on guest_x86::softfloat
        // (LLVM may commute `fa * fb`, so "identical" expressions at two
        // call sites can return different NaN bits).
        ("fp_nan_chain", include_str!("corpus/fp_nan_chain.risotto")),
        ("fp_nan_cross_thread", include_str!("corpus/fp_nan_cross_thread.risotto")),
    ];
    for (name, text) in corpus {
        let spec =
            parse_corpus(text).unwrap_or_else(|e| panic!("corpus `{name}` failed to parse: {e}"));
        let result = differential(&spec);
        assert!(
            result.divergences.is_empty(),
            "corpus `{name}` diverged: {:?}",
            result.divergences
        );
        // Round-trip the checked-in file too: serializer output parses
        // back to the same spec (formatting may differ, semantics not).
        let back = parse_corpus(&to_corpus_string(&spec)).expect("re-serialized corpus parses");
        assert_eq!(back, spec, "corpus `{name}` did not round-trip");
    }
    // The promotion corpus exists to drive tier-2: check it still does.
    let spec = parse_corpus(include_str!("corpus/hot_loop_promotion.risotto")).unwrap();
    assert!(differential(&spec).promoted, "hot_loop_promotion no longer reaches tier-2 promotion");
}

/// The documented regression-test skeleton for a minimized reproducer
/// contains the pieces a paste-in needs.
#[test]
fn regression_skeleton_is_complete() {
    let spec = generate(&GenConfig::default(), 99);
    let s = risotto::fuzz::regression_test_skeleton(&spec, "divergent_demo");
    for needle in ["#[test]", "fn corpus_divergent_demo()", "parse_corpus", "differential"] {
        assert!(s.contains(needle), "skeleton missing `{needle}`:\n{s}");
    }
}
