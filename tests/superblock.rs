//! Acceptance tests for tier-2 superblock formation (the PR's tentpole).
//!
//! The contract: tiering is a pure performance tier. Across the full
//! 16-kernel Fig. 12 suite — and under seeded fault-injection plans — a
//! tier-2 run's architectural results (per-thread exit values, WRITE
//! output) are bit-identical to tier-1. At least one fence-heavy kernel
//! must show fence merges *across* former TB boundaries together with a
//! simulated-cycle reduction, and every promotion must leave the chain
//! graph clean (no chain word pointing at a freed translation).

use risotto::core::{Emulator, FaultPlan, FaultSite, Setup, TierConfig};
use risotto::guest::{GuestBinary, Interp};
use risotto::host::CostModel;
use risotto::workloads::kernels;

const FUEL: u64 = 400_000_000;

fn cost() -> CostModel {
    CostModel::thunderx2_like()
}

/// A low threshold so the short CI-scale kernels get hot enough to
/// promote; policy knobs otherwise at their defaults.
fn tier_cfg() -> TierConfig {
    TierConfig { hot_threshold: 16, ..TierConfig::default() }
}

/// Tier-2 across all 16 kernels: bit-identical results, real promotions,
/// cross-boundary fence merges with a cycle win somewhere in the suite,
/// and a clean chain graph after every run.
#[test]
fn tier2_matches_tier1_on_all_kernels() {
    let mut total_promotions = 0u64;
    let mut total_cross = 0u64;
    let mut kernels_with_cycle_win = Vec::new();
    for w in kernels::all() {
        let bin = (w.build)(32, 2);

        let mut tier1 = Emulator::new(&bin, Setup::Risotto, 2, cost());
        let r1 = tier1.run(FUEL).unwrap_or_else(|e| panic!("{} (tier-1): {e}", w.name));

        let mut tier2 = Emulator::new(&bin, Setup::Risotto, 2, cost());
        tier2.set_tiering(Some(tier_cfg()));
        let r2 = tier2.run(FUEL).unwrap_or_else(|e| panic!("{} (tier-2): {e}", w.name));

        assert_eq!(
            r2.exit_vals, r1.exit_vals,
            "{}: exit values diverge between tier-2 and tier-1",
            w.name
        );
        assert_eq!(r2.output, r1.output, "{}: guest output diverges under tiering", w.name);

        // Tier-1 runs must never report superblock activity.
        assert_eq!(r1.sb.promotions, 0, "{}: tier-1 run promoted", w.name);
        assert_eq!(r1.sb.entries, 0, "{}: tier-1 run entered a superblock", w.name);

        // No dangling chain words after promotion churn (PR 2's
        // reverse-chain index audits every patched site).
        let bad = tier2.validate_chains();
        assert!(bad.is_empty(), "{}: dangling chain words after tiering: {bad:x?}", w.name);

        if r2.sb.promotions > 0 {
            assert!(r2.sb.entries > 0, "{}: promoted but never entered a superblock", w.name);
            assert!(
                r2.sb.tbs_merged >= 2 * r2.sb.promotions,
                "{}: a superblock merged fewer than 2 TBs",
                w.name
            );
        }
        total_promotions += r2.sb.promotions;
        total_cross += r2.sb.fences_merged_cross;
        if r2.sb.fences_merged_cross > 0 && r2.cycles < r1.cycles {
            kernels_with_cycle_win.push((w.name, r1.cycles, r2.cycles));
        }
    }
    assert!(total_promotions > 0, "no kernel ever promoted a superblock");
    assert!(total_cross > 0, "no fence merge ever crossed a TB boundary");
    assert!(
        !kernels_with_cycle_win.is_empty(),
        "no kernel showed a cycle win from cross-TB fence merging"
    );
}

/// Fault-free reference: the guest interpreter's checksum and output.
fn reference(bin: &GuestBinary) -> (u64, Vec<u8>) {
    let mut interp = Interp::new(bin);
    interp.run(FUEL).expect("reference interpreter must complete");
    (interp.exit_val(0), interp.output.clone())
}

/// Tiering composed with fault injection: promotion must not weaken the
/// PR 1 robustness contract — every completing run still matches the
/// fault-free reference, across translate/lower/TB-cache fault mixes
/// (TB-cache strikes also demote superblock heads, exercising the
/// re-promotion path).
#[test]
fn tier2_is_identical_under_fault_injection() {
    let picks = ["histogram", "matrixmultiply", "vips"];
    let workloads: Vec<_> =
        kernels::all().into_iter().filter(|w| picks.contains(&w.name)).collect();
    assert_eq!(workloads.len(), picks.len());

    let mut completed = 0u32;
    let mut tiered_completions_with_promotions = 0u32;
    for w in &workloads {
        let bin = (w.build)(16, 2);
        let (ref_exit, ref_out) = reference(&bin);
        for seed in 0..40u64 {
            let plan = match seed % 3 {
                0 => FaultPlan::seeded(seed).rate(FaultSite::Translate, 1500),
                1 => FaultPlan::seeded(seed).rate(FaultSite::Lower, 1500),
                _ => FaultPlan::seeded(seed).rate(FaultSite::TbCache, 2500),
            };
            let mut emu = Emulator::new(&bin, Setup::Risotto, 2, cost());
            emu.set_fault_plan(plan);
            emu.set_tiering(Some(tier_cfg()));
            match emu.run(FUEL) {
                Ok(report) => {
                    assert_eq!(
                        report.exit_vals[0],
                        Some(ref_exit),
                        "{} seed {seed}: checksum diverged under faults + tiering",
                        w.name
                    );
                    assert_eq!(
                        report.output, ref_out,
                        "{} seed {seed}: output diverged under faults + tiering",
                        w.name
                    );
                    let bad = emu.validate_chains();
                    assert!(
                        bad.is_empty(),
                        "{} seed {seed}: dangling chains under faults + tiering: {bad:x?}",
                        w.name
                    );
                    completed += 1;
                    if report.sb.promotions > 0 {
                        tiered_completions_with_promotions += 1;
                    }
                }
                Err(e) => panic!("{} seed {seed}: typed error under tiering: {e}", w.name),
            }
        }
    }
    assert_eq!(completed, 120, "every faulted tiered run must complete");
    assert!(
        tiered_completions_with_promotions > 0,
        "fault sweep never exercised an actual promotion"
    );
}

/// Demotion and re-promotion: corrupting a superblock head's cache entry
/// evicts it (tier-1 refill on the next miss), and the still-hot block is
/// promoted again — the engine's fallback path for superblock corruption.
#[test]
fn superblock_corruption_demotes_then_repromotes() {
    let w = kernels::all().into_iter().find(|w| w.name == "vips").unwrap();
    let bin = (w.build)(64, 2);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, cost());
    // Background TB-cache strikes keep evicting translations — including
    // promoted heads — while the low threshold keeps re-promoting.
    emu.set_fault_plan(FaultPlan::seeded(7).rate(risotto::core::FaultSite::TbCache, 500));
    emu.set_tiering(Some(tier_cfg()));
    let report = emu.run(FUEL).expect("corrupted tiered run completes");

    let mut reference = Emulator::new(&bin, Setup::Risotto, 2, cost());
    let r1 = reference.run(FUEL).unwrap();
    assert_eq!(report.exit_vals, r1.exit_vals);
    assert_eq!(report.output, r1.output);
    assert!(report.sb.promotions > 0, "never promoted under cache pressure");
    assert!(emu.validate_chains().is_empty());
}
