//! Cross-backend acceptance tests (docs/BACKENDS.md): the Arm and
//! MiniTSO host backends must be observationally equivalent for
//! guest-visible state.
//!
//! * every Fig. 12 kernel produces bit-identical exit values and output
//!   under both backends at `VerifyLevel::Full`, and the TSO run never
//!   executes a partial barrier (x86 has only `MFENCE`);
//! * litmus programs executed through the TSO backend stay within the
//!   x86-allowed behavior set across interleaving staggers;
//! * a seeded fuzz batch reports zero divergences across the full oracle
//!   matrix (which includes the `tier1-tso` cross-backend leg);
//! * install-time corruption of TSO-lowered code is caught by the
//!   per-backend Pass 3 read-back before dispatch (mutant kill);
//! * `docs/BACKENDS.md` documents every TCG fence kind and every
//!   backend-trait method — and names nothing that does not exist.

use std::collections::BTreeSet;

use risotto::core::{BackendKind, Emulator, FaultPlan, Setup, VerifyLevel};
use risotto::fuzz::{differential, generate, program_seed, GenConfig};
use risotto::host::{ArmOrdering, HostBackend, OrderingLowering};
use risotto::litmus::{behaviors, corpus, Behavior, Program};
use risotto::memmodel::{FenceKind, X86Tso};
use risotto::workloads::kernels;
use risotto::workloads::litmus_compile::compile_litmus;

const FUEL: u64 = 2_000_000_000;

fn run_kernel(
    bin: &risotto::guest::GuestBinary,
    backend: BackendKind,
) -> (risotto::core::Report, u64, u64, u64) {
    let mut emu = Emulator::new(bin, Setup::Risotto, 2, backend.cost_model());
    emu.set_backend(backend);
    emu.set_verify(VerifyLevel::Full);
    let r = emu.run(FUEL).unwrap_or_else(|e| panic!("{} backend: {e}", backend.name()));
    let m = emu.metrics();
    (r, m.counter("verify.checked"), m.counter("verify.violations"), m.counter("fence.exec.dmb_ff"))
}

/// Every kernel, both backends, full verification: guest-visible results
/// are bit-identical; the verifier actually ran and found nothing.
#[test]
fn kernels_are_bit_identical_across_backends() {
    for w in kernels::all() {
        let bin = (w.build)(8, 2);
        let (arm, arm_checked, arm_viol, _) = run_kernel(&bin, BackendKind::Arm);
        let (tso, tso_checked, tso_viol, _) = run_kernel(&bin, BackendKind::Tso);

        assert_eq!(tso.exit_vals, arm.exit_vals, "{}: exit values diverge across backends", w.name);
        assert_eq!(tso.output, arm.output, "{}: output diverges across backends", w.name);
        assert!(arm_checked > 0 && tso_checked > 0, "{}: verifier did not run", w.name);
        assert_eq!(arm_viol, 0, "{}: Arm verifier flagged a clean pipeline", w.name);
        assert_eq!(tso_viol, 0, "{}: TSO verifier flagged a clean pipeline", w.name);

        // The TSO dialect has no partial barriers: every fence it
        // executes is a full MFENCE, so the Ld/St barrier counters on
        // the machine side must stay at zero.
        let mut emu = Emulator::new(&bin, Setup::Risotto, 2, BackendKind::Tso.cost_model());
        emu.set_backend(BackendKind::Tso);
        let r = emu.run(FUEL).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(r.stats.dmb[0], 0, "{}: TSO backend executed a DMB LD", w.name);
        assert_eq!(r.stats.dmb[1], 0, "{}: TSO backend executed a DMB ST", w.name);
    }
}

/// Runs one compiled litmus program under the given backend and returns
/// the observed behavior.
fn run_litmus_once(prog: &Program, backend: BackendKind, delays: &[u64]) -> Behavior {
    let compiled = compile_litmus(prog, delays);
    let mut emu =
        Emulator::new(&compiled.binary, Setup::Risotto, compiled.threads, backend.cost_model());
    emu.set_backend(backend);
    emu.set_verify(VerifyLevel::Full);
    emu.run(50_000_000)
        .unwrap_or_else(|e| panic!("{} under {} backend: {e}", prog.name, backend.name()));
    compiled.observe(emu.mem())
}

/// Sweeps interleaving staggers under the TSO backend; every observed
/// behavior must be x86-allowed. (Observed *sets* may legitimately
/// differ between backends — TSO emits fewer fences, so store buffers
/// drain on a different schedule — but containment in the axiomatic
/// x86 set is the correctness bar for both.)
#[test]
fn litmus_under_tso_backend_stays_within_x86_behaviors() {
    let staggers: &[&[u64]] =
        &[&[0, 0], &[0, 40], &[40, 0], &[0, 7], &[7, 0], &[13, 11], &[3, 90], &[90, 3]];
    for prog in [corpus::mp(), corpus::sb(), corpus::sb_fenced(), corpus::lb(), corpus::s_test()] {
        let allowed = behaviors(&prog, &X86Tso::new());
        let mut seen = BTreeSet::new();
        for delays in staggers {
            let obs = run_litmus_once(&prog, BackendKind::Tso, delays);
            assert!(
                allowed.iter().any(|b| b.mem == obs.mem && b.regs == obs.regs),
                "{} under tso backend (delays {delays:?}): observed {obs:?} is NOT x86-allowed",
                prog.name,
            );
            seen.insert(obs);
        }
        assert!(!seen.is_empty());
    }
}

/// RMW litmus programs (LOCK-prefixed forms on the TSO side) also stay
/// within the x86 set.
#[test]
fn rmw_litmus_under_tso_backend() {
    for prog in [corpus::mpq_x86(), corpus::sbq_x86(), corpus::sbal_x86()] {
        let allowed = behaviors(&prog, &X86Tso::new());
        let sweeps: [&[u64]; 4] = [&[0, 0], &[0, 40], &[40, 0], &[13, 11]];
        for delays in sweeps {
            let obs = run_litmus_once(&prog, BackendKind::Tso, delays);
            assert!(
                allowed.iter().any(|b| b.mem == obs.mem && b.regs == obs.regs),
                "{} under tso backend: observed {obs:?} is NOT x86-allowed",
                prog.name,
            );
        }
    }
}

/// A seeded batch through the full differential oracle matrix — which
/// includes the `tier1-tso` cross-backend configuration — finds zero
/// divergences.
#[test]
fn seeded_fuzz_batch_has_no_cross_backend_divergence() {
    let cfg = GenConfig::default();
    for i in 0..40 {
        let seed = program_seed(0xBAC0_0000, i);
        let spec = generate(&cfg, seed);
        let res = differential(&spec);
        assert!(
            res.divergences.is_empty(),
            "seed {seed:#x}: cross-backend divergence: {}",
            res.divergences.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ")
        );
        assert!(res.configs_run >= 5, "seed {seed:#x}: oracle matrix did not run fully");
    }
}

/// Mutant kill through the engine: corrupting installed TSO code is
/// caught by the per-backend Pass 3 encoding read-back before dispatch,
/// and the run still matches a fault-free TSO reference exactly.
#[test]
fn tso_install_corruption_is_caught_by_pass3() {
    let w = kernels::all().into_iter().find(|w| w.name == "histogram").expect("histogram kernel");
    let bin = (w.build)(64, 2);

    let mut clean = Emulator::new(&bin, Setup::Risotto, 2, BackendKind::Tso.cost_model());
    clean.set_backend(BackendKind::Tso);
    clean.set_verify(VerifyLevel::Off);
    let reference = clean.run(FUEL).expect("clean tso run");

    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, BackendKind::Tso.cost_model());
    emu.set_backend(BackendKind::Tso);
    emu.set_verify(VerifyLevel::Install);
    emu.set_fault_plan(FaultPlan::seeded(7).corrupt_install_at(0).corrupt_install_at(3));
    let report = emu.run(FUEL).expect("verified tso run recovers");

    assert_eq!(report.exit_vals, reference.exit_vals);
    assert_eq!(report.output, reference.output);

    let m = emu.metrics();
    assert_eq!(m.counter("verify.violations"), 2, "both corruptions must be flagged");
    assert_eq!(m.counter("verify.encoding_violations"), 2);
    assert!(report.fallback_blocks >= 1, "rejected installs fall back to the interpreter");
}

/// The native oracle is Arm-compiled code; it has no TSO rendition.
#[test]
#[should_panic(expected = "native oracle")]
fn native_setup_rejects_tso_backend() {
    let bin = (kernels::all()[0].build)(4, 1);
    let mut emu = Emulator::new(&bin, Setup::Native, 1, BackendKind::Arm.cost_model());
    emu.set_backend(BackendKind::Tso);
}

/// The names the completeness test below checks against, tied to the
/// real traits at compile time: if a method is renamed, this stops
/// compiling before the doc check can silently rot.
fn trait_method_names() -> Vec<&'static str> {
    use risotto::host::{BackendConfig, HostAsm, HostInsn, Xreg};
    let _: fn(&ArmOrdering, FenceKind) -> Option<HostInsn> = ArmOrdering::fence;
    let _: fn(&ArmOrdering, &mut HostAsm, Xreg, Xreg, Xreg, Xreg, BackendConfig) = ArmOrdering::cas;
    let _: fn(&ArmOrdering, &mut HostAsm, Xreg, Xreg, Xreg, BackendConfig) =
        ArmOrdering::atomic_add;
    let _: fn(&ArmOrdering, BackendConfig) -> Vec<Xreg> = ArmOrdering::alloc_pool;
    let _ = <risotto::host::ArmBackend as HostBackend>::name;
    let _ = <risotto::host::ArmBackend as HostBackend>::lower_block_with_stats;
    let _ = <risotto::host::ArmBackend as HostBackend>::cost_model;
    let _ = <risotto::host::ArmBackend as HostBackend>::check_encoding;
    vec![
        // OrderingLowering
        "fence",
        "cas",
        "atomic_add",
        "alloc_pool",
        // HostBackend
        "name",
        "lower_block_with_stats",
        "cost_model",
        "check_encoding",
    ]
}

/// Forward direction: `docs/BACKENDS.md` names every TCG fence kind (in
/// both backends' lowering tables) and every backend-trait method.
#[test]
fn backends_md_documents_every_fence_kind_and_trait_method() {
    let doc = include_str!("../docs/BACKENDS.md");
    for k in FenceKind::TCG_ALL {
        let token = format!("`{k:?}`");
        assert!(
            doc.contains(&token),
            "docs/BACKENDS.md is missing fence kind {token} — both lowering tables must cover it"
        );
    }
    for method in trait_method_names() {
        let token = format!("`{method}`");
        assert!(
            doc.contains(&token),
            "docs/BACKENDS.md is missing trait method {token} — document the contract"
        );
    }
}

/// Reverse direction: every fence-kind-shaped and method-shaped token the
/// document names actually exists. The doc may not describe a fence kind
/// or trait method that the code does not have.
#[test]
fn backends_md_names_nothing_that_does_not_exist() {
    let doc = include_str!("../docs/BACKENDS.md");
    let fence_names: Vec<String> = FenceKind::TCG_ALL
        .iter()
        .map(|k| format!("{k:?}"))
        .chain(["MFence", "DmbLd", "DmbSt", "DmbFf"].map(String::from))
        .collect();
    let methods = trait_method_names();
    for token in doc.split('`').skip(1).step_by(2) {
        // Fence-kind-shaped tokens: `F…` camel-case or the machine-level
        // kinds. Anything shaped like one must be a real variant.
        let fence_shaped = (token.starts_with('F')
            && token.len() <= 4
            && token.chars().skip(1).all(|c| c.is_ascii_lowercase()))
            || token.starts_with("Dmb")
            || token == "MFence";
        if fence_shaped {
            assert!(
                fence_names.iter().any(|n| n == token),
                "docs/BACKENDS.md names `{token}` which is not a FenceKind variant"
            );
        }
        // Method-shaped tokens: `foo()` with a known-method prefix rule —
        // every parenthesised lowercase token must be a real trait
        // method, a real free function, or a real inherent method.
        if let Some(name) = token.strip_suffix("()") {
            let name = name.rsplit("::").next().unwrap_or(name);
            if methods.contains(&name) {
                continue; // trait method, exists by construction above
            }
            let known_free = [
                "arm_dmb_of",
                "tso_fence",
                "tso_fence_insn",
                "arm_dmb",
                "lower_block_with_dialect",
                "check_encoding_with",
                "expected_points",
                "check_dialect",
                "set_backend",
                "thunderx2_like",
                "x86_server_like",
                "verified_x86_to_tso",
            ];
            assert!(
                known_free.contains(&name),
                "docs/BACKENDS.md names `{name}()` which this test does not know; \
                 add it to `known_free` with a compile-time tie if it is real"
            );
        }
    }
}

/// The shared fence tables are the single source of truth: the Arm
/// lowering hook and the TSO lowering hook agree with
/// `FenceKind::arm_dmb`/`FenceKind::tso_fence` on every TCG kind.
#[test]
fn lowering_hooks_agree_with_shared_fence_tables() {
    use risotto::host::{Dmb, HostInsn};
    for k in FenceKind::TCG_ALL {
        let arm = ArmOrdering.fence(k);
        assert_eq!(arm.is_some(), k.arm_dmb().is_some(), "{k:?}: Arm hook vs shared table");
        let tso = risotto::host_tso::TsoOrdering.fence(k);
        assert_eq!(tso.is_some(), k.tso_fence().is_some(), "{k:?}: TSO hook vs shared table");
        if let Some(insn) = tso {
            assert_eq!(insn, HostInsn::Barrier(Dmb::Ff), "{k:?}: TSO fences are MFENCE only");
        }
    }
}
