//! Exhaustive soundness regressions for the optimizer's fence side
//! conditions, checked against the executable TCG IR memory model.
//!
//! Two families:
//!
//! 1. **Memory-access eliminations** (`forward_memory`): for every TCG
//!    fence we build the pre- and post-elimination litmus programs and
//!    check `behaviors(after) ⊆ behaviors(before)` under `TcgIr` by
//!    exhaustive enumeration. The derived verdicts must agree with
//!    [`risotto::tcg::elim_may_cross`]. This is the regression for the
//!    WAW bug where the RAR predicate (`Frm`/`Fww`) was used to delete
//!    stores: deleting `St x` across `Fww` in `St x; Fww; St x'; St y`
//!    drops the `[W];po;[Fww];po;[W]` edge into `St y`, and an observer
//!    reading `y` new then (dependently) `x` stale witnesses it.
//!
//! 2. **Fence merging** (`merge_fences`): for every ordered pair of TCG
//!    fences and four surrounding-access shapes (W·W, W·R, R·W, R·R),
//!    replacing the pair by its `tcg_join` must not allow new behaviors.

use risotto::litmus::{behaviors, Behavior, Expr, Program, Reg};
use risotto::memmodel::{FenceKind, Loc, TcgIr};
use risotto::tcg::{elim_may_cross, ElimKind};
use std::collections::BTreeSet;

const X: Loc = Loc(0);
const Y: Loc = Loc(1);
const Z: Loc = Loc(2);
const R0: Reg = Reg(0);
const R1: Reg = Reg(1);
const R2: Reg = Reg(2);

fn beh(p: &Program) -> BTreeSet<Behavior> {
    behaviors(p, &TcgIr::new())
}

/// `after` must exhibit no behavior `before` forbids.
fn is_sound(before: &Program, after: &Program) -> bool {
    beh(after).is_subset(&beh(before))
}

/// The two WAW shapes. `elim` drops the first store (what the optimizer
/// does); the observer threads are chosen so every fence with a write in
/// its predecessor class is caught by at least one shape.
fn waw_shapes(f: FenceKind, elim: bool) -> [Program; 2] {
    // Shape A — trailing store: the deleted `St X=1` carries the
    // `[W];po;[f];po;[W]` edge into `St Y=1` (catches Fww/Fwm/Fmw/Fmm/Fsc).
    let a = Program::builder("waw-A")
        .thread(|t| {
            if !elim {
                t.store(X, 1);
            }
            t.fence(f).store(X, 2).store(Y, 1);
        })
        .thread(|t| {
            t.load(R0, Y).fence(FenceKind::Frm).load(R1, X);
        })
        .build();
    // Shape B — intervening load: the deleted store's `[W];po;[f];po;[R]`
    // edge into `Ld Z` (catches Fwr/Fmr and the `m`-pre fences again).
    let b = Program::builder("waw-B")
        .thread(|t| {
            if !elim {
                t.store(X, 1);
            }
            t.fence(f).load(R2, Z).store(X, 2);
        })
        .thread(|t| {
            t.store(Z, 1).fence(FenceKind::Fmm).load(R1, X);
        })
        .build();
    [a, b]
}

/// Exhaustive WAW verdicts: for every ordering TCG fence the model-derived
/// verdict must equal the predicate the optimizer uses. Fails on the
/// pre-fix code, which allowed `Fww` (unsound) and refused `Frr`/`Frw`
/// (sound).
#[test]
fn waw_side_condition_matches_the_model() {
    for f in FenceKind::TCG_ALL {
        let sound = waw_shapes(f, false)
            .iter()
            .zip(waw_shapes(f, true).iter())
            .all(|(before, after)| is_sound(before, after));
        if f.tcg_order().is_some() {
            assert_eq!(
                elim_may_cross(ElimKind::Waw, f),
                sound,
                "WAW across {f:?}: model says sound={sound}"
            );
        } else {
            // Facq/Frel impose no ord edges (deletion is trivially sound);
            // the predicate is allowed to refuse them conservatively.
            assert!(sound, "no-op fence {f:?} cannot make WAW unsound");
            assert!(!elim_may_cross(ElimKind::Waw, f), "predicate stays conservative");
        }
    }
}

/// RAW forwarding models `St X=v; f; Ld r=X ↝ St X=v; f; r:=v`.
fn raw_shape(f: FenceKind, elim: bool) -> Program {
    Program::builder("raw")
        .thread(|t| {
            t.store(X, 1).fence(f);
            if elim {
                t.let_(R0, 1u64);
            } else {
                t.load(R0, X);
            }
            t.store(Y, 1);
        })
        .thread(|t| {
            t.store(X, 2).fence(FenceKind::Fmm).load(R1, Y);
        })
        .build()
}

/// RAR forwarding models `Ld r0=X; f; Ld r1=X ↝ Ld r0=X; f; r1:=r0`.
fn rar_shape(f: FenceKind, elim: bool) -> Program {
    Program::builder("rar")
        .thread(|t| {
            t.load(R0, X).fence(f);
            if elim {
                t.let_(R1, Expr::Reg(R0));
            } else {
                t.load(R1, X);
            }
            t.load(R2, Y);
        })
        .thread(|t| {
            t.store(Y, 1).fence(FenceKind::Fww).store(X, 1);
        })
        .build()
}

/// The read eliminations must be sound for every fence their predicates
/// allow (the other direction — the predicate being minimal — is the
/// paper's Fig. 10 claim, not something these two shapes can establish).
#[test]
fn read_elimination_predicates_are_sound() {
    for f in FenceKind::TCG_ALL {
        if elim_may_cross(ElimKind::Raw, f) {
            assert!(
                is_sound(&raw_shape(f, false), &raw_shape(f, true)),
                "RAW across {f:?} is allowed by the predicate but unsound"
            );
        }
        if elim_may_cross(ElimKind::Rar, f) {
            assert!(
                is_sound(&rar_shape(f, false), &rar_shape(f, true)),
                "RAR across {f:?} is allowed by the predicate but unsound"
            );
        }
    }
}

/// One program per surrounding-access shape, with either the fence pair
/// `f1; f2` or a single fence (the join) at the marked point.
fn merge_shapes(fences: &[FenceKind]) -> [Program; 4] {
    let seq = |t: &mut risotto::litmus::ThreadBuilder, fences: &[FenceKind]| {
        for f in fences {
            t.fence(*f);
        }
    };
    let ww = Program::builder("merge-WW")
        .thread(|t| {
            t.store(X, 1);
            seq(t, fences);
            t.store(Y, 1);
        })
        .thread(|t| {
            t.load(R0, Y).fence(FenceKind::Frm).load(R1, X);
        })
        .build();
    let wr = Program::builder("merge-WR")
        .thread(|t| {
            t.store(X, 1);
            seq(t, fences);
            t.load(R0, Y);
        })
        .thread(|t| {
            t.store(Y, 1).fence(FenceKind::Fmm).load(R1, X);
        })
        .build();
    let rw = Program::builder("merge-RW")
        .thread(|t| {
            t.load(R0, X);
            seq(t, fences);
            t.store(Y, 1);
        })
        .thread(|t| {
            t.load(R1, Y).fence(FenceKind::Fmm).store(X, 1);
        })
        .build();
    let rr = Program::builder("merge-RR")
        .thread(|t| {
            t.load(R0, X);
            seq(t, fences);
            t.load(R1, Y);
        })
        .thread(|t| {
            t.store(Y, 1).fence(FenceKind::Fww).store(X, 1);
        })
        .build();
    [ww, wr, rw, rr]
}

/// For every ordered pair of TCG fences, replacing `f1; f2` by
/// `f1.tcg_join(f2)` must not enable behaviors in any of the four
/// surrounding-access shapes — the per-case model verification behind
/// `merge_fences`.
#[test]
fn fence_join_is_sound_for_every_pair() {
    for f1 in FenceKind::TCG_ALL {
        for f2 in FenceKind::TCG_ALL {
            let join = f1.tcg_join(f2);
            let pairs = merge_shapes(&[f1, f2]);
            let joined = merge_shapes(&[join]);
            for (before, after) in pairs.iter().zip(joined.iter()) {
                assert!(
                    is_sound(before, after),
                    "{} : {f1:?}·{f2:?} ↝ {join:?} allowed new behaviors",
                    before.name
                );
            }
        }
    }
}

/// Directly pin the counterexample the WAW fix closes: with the first
/// store deleted across `Fww`, the observer may see `Y` new and `X`
/// stale — an outcome the original program forbids.
#[test]
fn fww_waw_counterexample_is_real() {
    let [before_a, _] = waw_shapes(FenceKind::Fww, false);
    let [after_a, _] = waw_shapes(FenceKind::Fww, true);
    let stale = |b: &Behavior| b.reg(1, R0) == 1 && b.reg(1, R1) == 0;
    assert!(
        !beh(&before_a).iter().any(stale),
        "original forbids Y=new, X=stale through the Fww edge"
    );
    assert!(
        beh(&after_a).iter().any(stale),
        "deleting the fenced store exposes the stale-X window"
    );
}
