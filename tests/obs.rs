//! Acceptance tests for the observability layer (metrics registry,
//! trace sinks, hot-TB profiler):
//!
//! * every registry counter equals its legacy `Report` source across the
//!   full 16-kernel Fig. 12 suite (the registry is a view, not a second
//!   set of books);
//! * a fully instrumented run (ring-buffer sink + stage timing + hot-TB
//!   profiling) is bit-identical in architectural results and simulated
//!   cycles to a default run — observability is passive;
//! * `RingBufferSink` is bounded and overwrites oldest-first;
//! * `docs/METRICS.md` documents 100% of the registry schema, and every
//!   metric a real run emits maps back into that schema;
//! * snapshots round-trip through their JSON exposition.

use std::cell::RefCell;
use std::rc::Rc;

use risotto::core::{
    Emulator, HotTbProfiler, MetricsRegistry, MetricsSnapshot, RingBufferSink, Setup, TraceEvent,
    TraceSink, TraceStage,
};
use risotto::host::CostModel;
use risotto::memmodel::FenceKind;
use risotto::workloads::kernels;

const FUEL: u64 = 400_000_000;

/// Forwards events into a shared ring buffer the test keeps a handle to
/// (the engine owns the installed sink, so inspection goes through `Rc`).
struct SharedSink(Rc<RefCell<RingBufferSink>>);

impl TraceSink for SharedSink {
    fn record(&mut self, event: &TraceEvent) {
        self.0.borrow_mut().record(event);
    }
}

#[test]
fn registry_counters_equal_legacy_report_on_all_kernels() {
    for w in kernels::all() {
        let bin = (w.build)(8, 2);
        let mut emu = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        emu.set_stage_timing(true);
        emu.set_profiling(true);
        let r = emu.run(FUEL).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let snap = emu.metrics();

        let expect = |metric: &str, legacy: u64| {
            assert_eq!(
                snap.counter(metric),
                legacy,
                "{}: metric `{metric}` diverged from its legacy Report source",
                w.name
            );
        };
        expect("translate.blocks", r.tb_count as u64);
        expect("translate.retranslations", r.retranslations as u64);
        expect("translate.fallback_blocks", r.fallback_blocks as u64);
        expect("opt.folded", r.opt.folded as u64);
        expect("opt.loads_forwarded", r.opt.loads_forwarded as u64);
        expect("opt.stores_eliminated", r.opt.stores_eliminated as u64);
        expect("opt.fences_merged", r.opt.fences_merged as u64);
        expect("opt.dce_removed", r.opt.dce_removed as u64);
        expect("chain.hits", r.chain.chain_hits);
        expect("chain.links", r.chain.chain_links);
        expect("chain.flushes", r.chain.chain_flushes);
        expect("jcache.hits", r.chain.dispatch_hits);
        expect("jcache.misses", r.chain.dispatch_misses);
        expect("fence.exec.dmb_ld", r.stats.dmb[0]);
        expect("fence.exec.dmb_st", r.stats.dmb[1]);
        expect("fence.exec.dmb_ff", r.stats.dmb[2]);
        expect("fence.exec.cycles", r.stats.fence_cycles);
        expect("exec.insns", r.stats.insns);
        assert_eq!(snap.gauge("exec.cycles"), r.cycles, "{}: exec.cycles gauge", w.name);
        assert_eq!(snap.gauge("exec.cores"), 2, "{}: exec.cores gauge", w.name);

        // Per-kind fence merges decompose the aggregate exactly.
        let merged_by_kind: u64 = FenceKind::TCG_ALL
            .iter()
            .map(|k| snap.counter(&format!("fence.merged.{}", k.tcg_name().unwrap())))
            .sum();
        assert_eq!(
            merged_by_kind, r.opt.fences_merged as u64,
            "{}: per-kind fence merges don't sum to opt.fences_merged",
            w.name
        );
        for (i, k) in FenceKind::TCG_ALL.iter().enumerate() {
            assert_eq!(
                snap.counter(&format!("fence.merged.{}", k.tcg_name().unwrap())),
                r.opt.fences_merged_by_kind[i] as u64,
                "{}: fence.merged.{} vs OptStats",
                w.name,
                k.tcg_name().unwrap()
            );
        }

        // Per-core gauge family materialized for both cores.
        assert!(snap.metrics.contains_key("core.0.insns"), "{}: core.0.insns missing", w.name);
        assert!(snap.metrics.contains_key("core.1.cycles"), "{}: core.1.cycles missing", w.name);

        // Stage timing was on: every successful decode is followed by
        // exactly one optimizer pass, and only lowered blocks leave
        // encode samples.
        let decode = snap.histogram("stage.decode_ns");
        let opt = snap.histogram("stage.opt_ns");
        let encode = snap.histogram("stage.encode_ns");
        assert!(decode.count > 0, "{}: no decode samples despite stage timing", w.name);
        assert_eq!(decode.count, opt.count, "{}: decode/opt sample counts differ", w.name);
        assert!(encode.count > 0 && encode.count <= decode.count, "{}: encode samples", w.name);
        assert!(decode.min <= decode.max && decode.sum >= decode.max, "{}: histogram", w.name);

        // The hot-TB profile covers real blocks and is sorted by execs.
        let hot = emu.hot_tbs(8);
        assert!(!hot.is_empty(), "{}: no hot TBs recorded", w.name);
        assert!(hot.windows(2).all(|p| p[0].execs >= p[1].execs), "{}: top_n not sorted", w.name);
        assert!(hot.iter().all(|t| t.execs > 0), "{}: zero-exec TB in profile", w.name);
    }
}

#[test]
fn instrumented_run_is_bit_identical_to_default_run() {
    for w in kernels::all() {
        let bin = (w.build)(8, 2);

        let mut plain = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        let rp = plain.run(FUEL).unwrap_or_else(|e| panic!("{} (plain): {e}", w.name));

        let ring = Rc::new(RefCell::new(RingBufferSink::new(4096)));
        let mut traced = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
        traced.set_trace_sink(Box::new(SharedSink(Rc::clone(&ring))));
        traced.set_stage_timing(true);
        traced.set_profiling(true);
        let rt = traced.run(FUEL).unwrap_or_else(|e| panic!("{} (traced): {e}", w.name));

        assert_eq!(rp.cycles, rt.cycles, "{}: tracing changed simulated cycles", w.name);
        assert_eq!(rp.exit_vals, rt.exit_vals, "{}: tracing changed exit values", w.name);
        assert_eq!(rp.output, rt.output, "{}: tracing changed guest output", w.name);

        let ring = ring.borrow();
        assert!(!ring.is_empty(), "{}: no trace events recorded", w.name);
        assert!(
            ring.events().any(|e| e.stage == TraceStage::Dispatch),
            "{}: no dispatch events",
            w.name
        );
        assert!(
            ring.events().any(|e| e.stage == TraceStage::Decode && e.dur_ns.is_some()),
            "{}: no timed decode events",
            w.name
        );
    }
}

#[test]
fn ring_buffer_sink_is_bounded_and_overwrites_oldest() {
    let mut ring = RingBufferSink::new(4);
    assert_eq!(ring.capacity(), 4);
    assert!(ring.is_empty());
    for seq in 0..10u64 {
        ring.record(&TraceEvent {
            seq,
            stage: TraceStage::Dispatch,
            core: Some(0),
            guest_pc: Some(0x1000 + seq),
            tb_id: None,
            dur_ns: None,
            detail: String::new(),
        });
    }
    assert_eq!(ring.len(), 4, "ring grew past its capacity");
    assert_eq!(ring.overwritten(), 6);
    let seqs: Vec<u64> = ring.events().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8, 9], "ring must retain the newest events, oldest first");

    // Capacity 0 is clamped to 1 rather than buffering nothing.
    let zero = RingBufferSink::new(0);
    assert_eq!(zero.capacity(), 1);
}

#[test]
fn metrics_md_documents_the_entire_schema() {
    let doc = include_str!("../docs/METRICS.md");
    for s in MetricsRegistry::specs() {
        assert!(
            doc.contains(&format!("`{}`", s.name)),
            "docs/METRICS.md is missing metric `{}` — document it (name, type, unit, source)",
            s.name
        );
    }

    // And the schema is closed: everything a real run emits normalizes
    // back to a documented spec name.
    let documented: Vec<String> = MetricsRegistry::specs().into_iter().map(|s| s.name).collect();
    let bin = (kernels::all()[0].build)(8, 2);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    emu.set_stage_timing(true);
    emu.set_profiling(true);
    emu.run(FUEL).expect("kernel runs");
    for name in emu.metrics().metrics.keys() {
        let doc_name = MetricsRegistry::doc_name(name);
        assert!(
            documented.contains(&doc_name),
            "run emitted `{name}` (documented form `{doc_name}`) which is not in the schema"
        );
    }
}

#[test]
fn snapshot_json_round_trips() {
    let bin = (kernels::all()[0].build)(8, 2);
    let mut emu = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    emu.set_stage_timing(true);
    emu.set_profiling(true);
    emu.run(FUEL).expect("kernel runs");
    let snap = emu.metrics();
    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(back, snap, "snapshot JSON exposition must round-trip losslessly");
    assert_eq!(back.version, 1);

    // Malformed input reports a position instead of panicking.
    assert!(MetricsSnapshot::from_json("{\"version\": 1").is_err());
    assert!(MetricsSnapshot::from_json("not json").is_err());
}

#[test]
fn hot_tb_profiler_default_is_empty_and_top_n_breaks_ties_by_pc() {
    // `Default` and `new` agree and start empty.
    let d = HotTbProfiler::default();
    assert!(d.is_empty());
    assert_eq!(d.len(), 0);
    assert!(d.top_n(8).is_empty());
    assert!(HotTbProfiler::new().is_empty());

    // Regression: equal execution counts must order by guest pc, so the
    // report is deterministic across HashMap iteration orders.
    let mut p = HotTbProfiler::new();
    p.record(3, 0x3000, 50, 0);
    p.record(1, 0x1000, 50, 2);
    p.record(4, 0x4000, 99, 1);
    p.record(2, 0x2000, 50, 0);
    let top = p.top_n(3);
    assert_eq!(top.len(), 3);
    assert_eq!(top[0].guest_pc, 0x4000, "hottest block first");
    assert_eq!(
        (top[1].guest_pc, top[2].guest_pc),
        (0x1000, 0x2000),
        "ties at 50 execs must order by ascending guest pc"
    );
    // The full report keeps the remaining tied block in pc order too.
    let all = p.top_n(10);
    assert_eq!(all.len(), 4);
    assert_eq!(all[3].guest_pc, 0x3000);

    // Re-recording accumulates instead of clobbering, and a real tb_id
    // upgrades an interpreted-only (id 0) entry.
    let mut q = HotTbProfiler::new();
    q.record(0, 0x5000, 1, 1);
    q.record(7, 0x5000, 2, 0);
    let only = q.top_n(1)[0];
    assert_eq!((only.tb_id, only.execs, only.chain_misses), (7, 3, 1));
}
