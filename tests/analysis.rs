//! The whole-program-analysis gate (docs/ANALYSIS.md).
//!
//! Four claims are tested over the Fig. 12 kernel corpus and the litmus
//! suite:
//!
//! 1. **Transparency** — every kernel produces bit-identical results
//!    with analysis-driven fence relaxation on and off, on both host
//!    backends, and never runs slower on Arm. At least three kernels
//!    must run strictly *faster* — the subsystem has to pay for itself.
//! 2. **Soundness under the verifier** — all relaxed translations pass
//!    `VerifyLevel::Full` with zero violations (the verifier re-derives
//!    the relaxation mask from the pristine facts), and litmus programs
//!    run with analysis on stay within the x86-allowed behavior set.
//! 3. **Mutant kill** — force-misclassifying shared accesses as
//!    private (`force_private_for_test`) makes the engine relax fences
//!    the verifier mask does not license; every mutant that actually
//!    relaxed more than the clean run must be rejected at install
//!    (Pass 2, `FenceObligations`), and the run must still produce the
//!    correct result via the interpreter fallback. Forcing an access
//!    the analysis already proved private is a no-op (negative
//!    control).
//! 4. **Caching** — a second emulator over the same image reuses the
//!    process-wide analysis cache instead of re-running the analysis.

use risotto::analysis::{AccessKind, SiteClass};
use risotto::core::{BackendKind, Emulator, Setup, VerifyLevel};
use risotto::host::CostModel;
use risotto::litmus::{behaviors, corpus};
use risotto::memmodel::X86Tso;
use risotto::workloads::kernels;
use risotto::workloads::litmus_compile::compile_litmus;

const SCALE: u64 = 4;
const THREADS: usize = 2;
const FUEL: u64 = 20_000_000_000;

/// Transparency on Arm: bit-identical results, cycles never up, and
/// strictly down on at least three kernels.
#[test]
fn kernels_bit_identical_and_no_slower_with_analysis() {
    let mut faster = Vec::new();
    for w in kernels::all() {
        let bin = (w.build)(SCALE, THREADS);
        let mut off = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
        let r_off = off.run(FUEL).unwrap_or_else(|e| panic!("{} (off): {e}", w.name));
        let mut on = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
        on.set_analysis(true);
        let r_on = on.run(FUEL).unwrap_or_else(|e| panic!("{} (on): {e}", w.name));
        assert_eq!(r_on.exit_vals, r_off.exit_vals, "{}: exit values diverge", w.name);
        assert_eq!(r_on.output, r_off.output, "{}: output diverges", w.name);
        assert!(
            r_on.cycles <= r_off.cycles,
            "{}: analysis-on regressed cycles ({} > {})",
            w.name,
            r_on.cycles,
            r_off.cycles
        );
        if r_on.cycles < r_off.cycles {
            faster.push(w.name);
        }
    }
    assert!(
        faster.len() >= 3,
        "fence relaxation must strictly reduce cycles on >= 3 kernels, got {faster:?}"
    );
}

/// Transparency on the MiniTSO backend: the relaxation mask is
/// backend-independent, and so are the guest-visible results.
#[test]
fn kernels_bit_identical_with_analysis_on_tso() {
    for w in kernels::all() {
        let bin = (w.build)(SCALE, THREADS);
        let mut off = Emulator::new(&bin, Setup::Risotto, THREADS, BackendKind::Tso.cost_model());
        off.set_backend(BackendKind::Tso);
        let r_off = off.run(FUEL).unwrap_or_else(|e| panic!("{} (tso off): {e}", w.name));
        let mut on = Emulator::new(&bin, Setup::Risotto, THREADS, BackendKind::Tso.cost_model());
        on.set_backend(BackendKind::Tso);
        on.set_analysis(true);
        let r_on = on.run(FUEL).unwrap_or_else(|e| panic!("{} (tso on): {e}", w.name));
        assert_eq!(r_on.exit_vals, r_off.exit_vals, "{}: tso exit values diverge", w.name);
        assert_eq!(r_on.output, r_off.output, "{}: tso output diverges", w.name);
    }
}

/// Every relaxed translation passes the full verifier: the relaxation
/// the engine applies is exactly the one the verifier's own mask
/// licenses (zero false positives on the clean corpus).
#[test]
fn full_verifier_accepts_all_analysis_relaxations() {
    let mut relaxed_total = 0;
    for w in kernels::all() {
        let bin = (w.build)(SCALE, THREADS);
        let mut emu = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
        emu.set_analysis(true);
        emu.set_verify(VerifyLevel::Full);
        emu.run(FUEL).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let m = emu.metrics();
        assert_eq!(
            m.counter("verify.violations"),
            0,
            "{}: clean kernel flagged under analysis",
            w.name
        );
        assert!(m.counter("verify.checked") > 0, "{}: verifier never ran", w.name);
        relaxed_total += m.counter("analysis.relaxed");
    }
    assert!(relaxed_total > 0, "no kernel relaxed any fence — subsystem went dead");
}

/// Litmus programs with analysis on: still within the x86-allowed set,
/// still verifier-clean. (Results are *not* compared to the
/// analysis-off run — removing private fences legitimately shifts
/// interleavings; containment in the axiomatic set is the spec.)
#[test]
fn litmus_with_analysis_stays_within_x86_behaviors() {
    for prog in [corpus::mp(), corpus::sb(), corpus::sb_fenced(), corpus::lb()] {
        let allowed = behaviors(&prog, &X86Tso::new());
        for delays in [&[0u64, 0][..], &[0, 40], &[40, 0], &[13, 11]] {
            let compiled = compile_litmus(&prog, delays);
            let mut emu = Emulator::new(
                &compiled.binary,
                Setup::Risotto,
                compiled.threads,
                CostModel::thunderx2_like(),
            );
            emu.set_analysis(true);
            emu.set_verify(VerifyLevel::Full);
            emu.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            let obs = compiled.observe(emu.mem());
            assert!(
                allowed.iter().any(|b| b.mem == obs.mem && b.regs == obs.regs),
                "{} (delays {delays:?}, analysis on): observed {obs:?} is NOT x86-allowed",
                prog.name
            );
            assert_eq!(
                emu.metrics().counter("verify.violations"),
                0,
                "{}: verifier flagged a litmus translation",
                prog.name
            );
        }
    }
}

/// Mutant kill: forcing every shared plain access private makes the
/// engine relax beyond the verifier's mask; Pass 2 must reject each
/// such translation at install, and the interpreter fallback must keep
/// the result correct. 100% kill: no mutant that relaxed more than the
/// clean run may pass the verifier.
#[test]
fn forced_private_mutants_die_at_install() {
    let mut kills = 0;
    let mut mutants = 0;
    for w in kernels::all() {
        let bin = (w.build)(SCALE, THREADS);
        let mut base = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
        let r_base = base.run(FUEL).unwrap_or_else(|e| panic!("{}: {e}", w.name));

        // Clean analysis-on reference: how much the licensed mask relaxes.
        let mut clean = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
        clean.set_analysis(true);
        clean.set_verify(VerifyLevel::Full);
        let r_clean = clean.run(FUEL).unwrap_or_else(|e| panic!("{} (clean): {e}", w.name));
        let mc = clean.metrics();
        assert_eq!(mc.counter("verify.violations"), 0, "{}: clean run flagged", w.name);
        let clean_relaxed = mc.counter("analysis.relaxed");
        assert_eq!(r_clean.exit_vals, r_base.exit_vals, "{}: clean run diverges", w.name);

        let shared: Vec<u64> = clean
            .analysis_facts()
            .expect("facts present after set_analysis")
            .sites
            .iter()
            .filter(|(_, s)| s.kind != AccessKind::Atomic && s.class == SiteClass::Shared)
            .map(|(&pc, _)| pc)
            .collect();
        if shared.is_empty() {
            continue; // nothing to misclassify in this kernel
        }
        mutants += 1;

        let mut evil = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
        evil.set_analysis(true);
        evil.set_verify(VerifyLevel::Full);
        for &pc in &shared {
            evil.force_private_for_test(pc);
        }
        let r_evil = evil.run(FUEL).unwrap_or_else(|e| panic!("{} (mutant): {e}", w.name));
        // Whatever the verifier did, the user-visible result must be the
        // fault-free one (rejected blocks fall back to the interpreter).
        assert_eq!(r_evil.exit_vals, r_base.exit_vals, "{}: mutant corrupted results", w.name);
        assert_eq!(r_evil.output, r_base.output, "{}: mutant corrupted output", w.name);
        let me = evil.metrics();
        if me.counter("analysis.relaxed") > clean_relaxed {
            // The mutant really removed extra fences: it must have died.
            assert!(
                me.counter("verify.violations") > 0,
                "{}: mutant relaxed shared accesses and survived the verifier",
                w.name
            );
            kills += 1;
        }
    }
    assert!(mutants >= 8, "expected shared sites in most kernels, got {mutants}");
    assert!(kills >= 6, "too few mutants exercised the kill path: {kills}/{mutants}");
}

/// Negative control: forcing a pc the analysis already proved private
/// changes nothing — same mask, zero violations.
#[test]
fn forcing_an_already_private_site_is_harmless() {
    let w = kernels::all().into_iter().find(|w| w.name == "pca").expect("pca kernel exists");
    let bin = (w.build)(SCALE, THREADS);
    let mut emu = Emulator::new(&bin, Setup::Risotto, THREADS, CostModel::thunderx2_like());
    emu.set_analysis(true);
    emu.set_verify(VerifyLevel::Full);
    let private: Vec<u64> = emu
        .analysis_facts()
        .expect("facts present")
        .sites
        .iter()
        .filter(|(_, s)| s.class == SiteClass::Private)
        .map(|(&pc, _)| pc)
        .collect();
    assert!(!private.is_empty(), "pca should have private accesses");
    for &pc in &private {
        emu.force_private_for_test(pc);
    }
    emu.run(FUEL).expect("pca runs");
    let m = emu.metrics();
    assert_eq!(m.counter("verify.violations"), 0, "private-forcing must be a no-op");
    assert!(m.counter("analysis.relaxed") > 0, "pca should relax its private accesses");
}

/// The process-wide analysis cache: a second emulator over the same
/// image must hit, not re-analyze.
#[test]
fn analysis_cache_is_shared_across_emulators() {
    // A binary unique to this test, so parallel tests cannot prefill
    // its cache entry.
    let bin = (kernels::all()[0].build)(3, 2);
    let mut a = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    a.set_analysis(true);
    let ma = a.metrics();
    let mut b = Emulator::new(&bin, Setup::Risotto, 2, CostModel::thunderx2_like());
    b.set_analysis(true);
    let mb = b.metrics();
    // The first emulator either missed (cold cache) or hit (another
    // test already analyzed this image — the cache is process-wide);
    // the second must hit either way, with zero misses.
    assert_eq!(
        ma.counter("analysis.cache_hits") + ma.counter("analysis.cache_misses"),
        1,
        "first set_analysis must do exactly one lookup"
    );
    assert_eq!(mb.counter("analysis.cache_hits"), 1, "second emulator must hit the cache");
    assert_eq!(mb.counter("analysis.cache_misses"), 0);
    // And toggling on an already-on emulator is a no-op.
    b.set_analysis(true);
    assert_eq!(b.metrics().counter("analysis.cache_hits"), 1);
}
