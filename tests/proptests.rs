//! Property-based tests across the workspace, driven by a small
//! self-contained seeded PRNG (no external crates, so the suite runs in
//! offline build environments).
//!
//! * codecs: MiniX86 and MiniArm encode/decode round-trips,
//! * optimizer: every pass pipeline preserves block semantics on random
//!   straight-line TCG blocks,
//! * relation algebra: closure/composition laws,
//! * fence lattice: join is an upper bound, `arm_dmb` is monotone,
//! * Theorem 1: the verified x86→Arm mapping never introduces behaviors
//!   on randomly generated two-thread programs,
//! * whole-DBT: random straight-line guest programs produce identical
//!   results under the interpreter and every emulator setup.

use risotto::guest::{AluOp, Cond, FpOp, Gpr, Insn, Operand};
use risotto::host::{HostInsn, Xreg};
use risotto::memmodel::{EventId, FenceKind, Relation};
use risotto::tcg::{env, eval_block, optimize, BinOp, CondOp, OptPolicy, TbExit, TcgBlock, TcgOp};

// ---------------------------------------------------------------------
// Deterministic generator: the workspace-shared SplitMix64 stream (the
// same one behind FaultPlan and the fuzzer), wrapped with the width
// helpers these properties want.
// ---------------------------------------------------------------------

struct Rng(risotto::core::SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(risotto::core::SplitMix64::new(seed))
    }

    fn u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.0.below(n)
    }

    fn usize_below(&mut self, n: usize) -> usize {
        self.0.usize_below(n)
    }

    fn u8_below(&mut self, n: u8) -> u8 {
        self.0.below(u64::from(n)) as u8
    }

    fn u16(&mut self) -> u16 {
        self.u64() as u16
    }

    fn i32(&mut self) -> i32 {
        self.u64() as i32
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.usize_below(max_len + 1);
        (0..len).map(|_| self.u64() as u8).collect()
    }
}

/// Runs `cases` seeded iterations of a property body, reporting the seed
/// on failure so a case can be replayed in isolation.
fn check(name: &str, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = 0x5eed_0000 ^ case;
        let mut rng = Rng::new(seed);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = res {
            eprintln!("property `{name}` failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

// ---------------------------------------------------------------------
// Codec round-trips.
// ---------------------------------------------------------------------

fn arb_gpr(rng: &mut Rng) -> Gpr {
    Gpr(rng.u8_below(16))
}

fn arb_operand(rng: &mut Rng) -> Operand {
    if rng.below(2) == 0 {
        Operand::Reg(arb_gpr(rng))
    } else {
        Operand::Imm(rng.u64())
    }
}

fn arb_cond(rng: &mut Rng) -> Cond {
    Cond::from_u8(rng.u8_below(12)).expect("condition codes 0..12 are valid")
}

const ALU_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::Mul,
];

fn arb_guest_insn(rng: &mut Rng) -> Insn {
    match rng.below(15) {
        0 => Insn::MovRI { dst: arb_gpr(rng), imm: rng.u64() },
        1 => Insn::MovRR { dst: arb_gpr(rng), src: arb_gpr(rng) },
        2 => Insn::Load { dst: arb_gpr(rng), base: arb_gpr(rng), disp: rng.i32() },
        3 => Insn::Store { base: arb_gpr(rng), disp: rng.i32(), src: arb_gpr(rng) },
        4 => Insn::LoadB { dst: arb_gpr(rng), base: arb_gpr(rng), disp: rng.i32() },
        5 => Insn::StoreB { base: arb_gpr(rng), disp: rng.i32(), src: arb_gpr(rng) },
        6 => Insn::Alu {
            op: ALU_OPS[rng.usize_below(ALU_OPS.len())],
            dst: arb_gpr(rng),
            src: arb_operand(rng),
        },
        7 => Insn::Cmp { a: arb_gpr(rng), b: arb_operand(rng) },
        8 => Insn::Jcc { cond: arb_cond(rng), rel: rng.i32() },
        9 => Insn::MulWide { src: arb_gpr(rng) },
        10 => Insn::LockCmpxchg { base: arb_gpr(rng), disp: rng.i32(), src: arb_gpr(rng) },
        11 => Insn::Mfence,
        12 => Insn::Ret,
        13 => Insn::Hlt,
        _ => Insn::Syscall,
    }
}

#[test]
fn guest_insn_roundtrips() {
    check("guest_insn_roundtrips", 512, |rng| {
        let insn = arb_guest_insn(rng);
        let mut buf = Vec::new();
        let n = insn.encode(&mut buf);
        let (decoded, len) = Insn::decode(&buf).expect("round-trip decode");
        assert_eq!(decoded, insn);
        assert_eq!(len, n);
    });
}

#[test]
fn guest_decode_never_panics() {
    check("guest_decode_never_panics", 2048, |rng| {
        let bytes = rng.bytes(24);
        let _ = Insn::decode(&bytes); // must not panic, errors are fine
    });
}

#[test]
fn host_insn_roundtrips() {
    use risotto::host::{ACond, AOp, Dmb, MemOrder};
    check("host_insn_roundtrips", 256, |rng| {
        let op = rng.u8_below(12);
        let r1 = rng.u8_below(32);
        let r2 = rng.u8_below(32);
        let imm = rng.u64();
        let rel = rng.i32();
        let insns = vec![
            HostInsn::MovImm { dst: Xreg(r1), imm },
            HostInsn::Ldr { dst: Xreg(r1), base: Xreg(r2), off: rel, order: MemOrder::Plain },
            HostInsn::Str { src: Xreg(r1), base: Xreg(r2), off: rel, order: MemOrder::AcqRel },
            HostInsn::LdrB { dst: Xreg(r1), base: Xreg(r2), off: rel },
            HostInsn::Cas {
                cmp_old: Xreg(r1),
                new: Xreg(r2),
                addr: Xreg(r1),
                acq_rel: op % 2 == 0,
            },
            HostInsn::Barrier(match op % 3 {
                0 => Dmb::Ld,
                1 => Dmb::St,
                _ => Dmb::Ff,
            }),
            HostInsn::BCond { cond: if op % 2 == 0 { ACond::Eq } else { ACond::Hi }, rel },
            HostInsn::AluImm { op: AOp::Eor, dst: Xreg(r1), a: Xreg(r2), imm },
        ];
        for insn in insns {
            let mut buf = Vec::new();
            let n = insn.encode(&mut buf);
            let (decoded, len) = HostInsn::decode(&buf).expect("round-trip decode");
            assert_eq!(decoded, insn);
            assert_eq!(len, n);
        }
    });
}

#[test]
fn host_decode_never_panics() {
    check("host_decode_never_panics", 2048, |rng| {
        let bytes = rng.bytes(24);
        let _ = HostInsn::decode(&bytes);
    });
}

// ---------------------------------------------------------------------
// Relation algebra.
// ---------------------------------------------------------------------

fn arb_relation(rng: &mut Rng, n: usize) -> Relation {
    let pairs = rng.usize_below(20);
    Relation::from_pairs(
        n,
        (0..pairs).map(|_| (EventId(rng.usize_below(n)), EventId(rng.usize_below(n)))),
    )
}

#[test]
fn closure_laws() {
    check("closure_laws", 256, |rng| {
        let r = arb_relation(rng, 8);
        let s = arb_relation(rng, 8);
        let tc = r.transitive_closure();
        // Idempotent, monotone, contains the base.
        assert_eq!(tc.transitive_closure(), tc.clone());
        for (a, b) in r.iter_pairs() {
            assert!(tc.contains(a, b));
        }
        // Composition distributes over union on the left.
        let lhs = r.union(&s).compose(&r);
        let rhs = r.compose(&r).union(&s.compose(&r));
        assert_eq!(lhs, rhs);
        // Inverse is involutive.
        assert_eq!(r.inverse().inverse(), r.clone());
        // acyclic(r) ⇔ irreflexive(r⁺).
        assert_eq!(r.is_acyclic(), tc.is_irreflexive());
    });
}

// ---------------------------------------------------------------------
// Fence lattice.
// ---------------------------------------------------------------------

#[test]
fn fence_join_is_upper_bound() {
    // The lattice is small: check every pair exhaustively.
    for a in FenceKind::TCG_ALL {
        for b in FenceKind::TCG_ALL {
            let j = a.tcg_join(b);
            assert!(j.tcg_at_least(a), "{j:?} not ≥ {a:?}");
            assert!(j.tcg_at_least(b), "{j:?} not ≥ {b:?}");
            // arm_dmb is monotone: the join's lowering orders at least as much.
            let rank = |f: Option<FenceKind>| match f {
                None => 0,
                Some(FenceKind::DmbLd) | Some(FenceKind::DmbSt) => 1,
                _ => 2,
            };
            assert!(rank(j.arm_dmb()) >= rank(a.arm_dmb()).min(rank(b.arm_dmb())));
        }
    }
}

// ---------------------------------------------------------------------
// Optimizer semantic preservation on random blocks.
// ---------------------------------------------------------------------

/// Generates a random straight-line SSA block over a handful of env regs
/// and memory addresses in a private scratch range.
fn arb_tcg_block(rng: &mut Rng) -> TcgBlock {
    let mut block = TcgBlock {
        guest_pc: 0x1000,
        guest_len: 0,
        ops: Vec::new(),
        exit: TbExit::Halt,
        n_temps: 0,
    };
    let scratch = 0x9000u64;
    let steps = 1 + rng.usize_below(23);
    for _ in 0..steps {
        let kind = rng.u8_below(7);
        let x = rng.u8_below(6);
        let y = rng.u64();
        match kind {
            0 => {
                let t = block.new_temp();
                block.ops.push(TcgOp::MovI { dst: t, val: u64::from(y as u16) });
                block.ops.push(TcgOp::SetReg { reg: x % 6, src: t });
            }
            1 | 2 => {
                let a = block.new_temp();
                let b = block.new_temp();
                let d = block.new_temp();
                block.ops.push(TcgOp::GetReg { dst: a, reg: x % 6 });
                block.ops.push(TcgOp::GetReg { dst: b, reg: (y % 6) as u8 });
                let op = if kind == 1 { BinOp::Add } else { BinOp::Mul };
                block.ops.push(TcgOp::Bin { op, dst: d, a, b });
                block.ops.push(TcgOp::SetReg { reg: x % 6, src: d });
            }
            3 => {
                let a = block.new_temp();
                let v = block.new_temp();
                block.ops.push(TcgOp::MovI { dst: a, val: scratch + (y % 4) * 8 });
                block.ops.push(TcgOp::GetReg { dst: v, reg: x % 6 });
                block.ops.push(TcgOp::St { addr: a, src: v });
            }
            4 => {
                let a = block.new_temp();
                let v = block.new_temp();
                block.ops.push(TcgOp::MovI { dst: a, val: scratch + (y % 4) * 8 });
                block.ops.push(TcgOp::Ld { dst: v, addr: a });
                block.ops.push(TcgOp::SetReg { reg: x % 6, src: v });
            }
            5 => {
                let f = match x % 3 {
                    0 => FenceKind::Frm,
                    1 => FenceKind::Fww,
                    _ => FenceKind::Fsc,
                };
                block.ops.push(TcgOp::Fence(f));
            }
            _ => {
                let a = block.new_temp();
                let b = block.new_temp();
                let d = block.new_temp();
                block.ops.push(TcgOp::GetReg { dst: a, reg: x % 6 });
                block.ops.push(TcgOp::GetReg { dst: b, reg: (y % 6) as u8 });
                block.ops.push(TcgOp::Setcond { cond: CondOp::LtU, dst: d, a, b });
                block.ops.push(TcgOp::SetReg { reg: x % 6, src: d });
            }
        }
    }
    block
}

#[test]
fn optimizer_preserves_block_semantics() {
    check("optimizer_preserves_block_semantics", 64, |rng| {
        let block = arb_tcg_block(rng);
        let seed = rng.u64();
        let mut optimized = block.clone();
        optimize(&mut optimized, OptPolicy::Verified);
        // Evaluate both against the same initial env/memory.
        let mut env1 = [0u64; env::COUNT];
        for (i, slot) in env1.iter_mut().enumerate() {
            *slot = seed.wrapping_mul(i as u64 + 1) % 97;
        }
        let mut env2 = env1;
        let mut m1 = risotto::guest::SparseMem::new();
        m1.write_u64(0x9000, seed % 1000);
        m1.write_u64(0x9008, seed % 7);
        let mut m2 = m1.clone();
        let e1 = eval_block(&block, &mut env1, &mut m1);
        let e2 = eval_block(&optimized, &mut env2, &mut m2);
        assert_eq!(e1, e2);
        assert_eq!(env1, env2);
        for slot in 0..4u64 {
            assert_eq!(
                m1.read_u64(0x9000 + slot * 8),
                m2.read_u64(0x9000 + slot * 8),
                "memory slot {slot} diverged"
            );
        }
    });
}

/// The optimizer never *adds* fences and never weakens one.
#[test]
fn optimizer_never_strengthens_fence_count() {
    check("optimizer_never_strengthens_fence_count", 128, |rng| {
        let block = arb_tcg_block(rng);
        let before = block.count_ops(|o| matches!(o, TcgOp::Fence(_)));
        let mut optimized = block.clone();
        optimize(&mut optimized, OptPolicy::Verified);
        let after = optimized.count_ops(|o| matches!(o, TcgOp::Fence(_)));
        assert!(after <= before);
    });
}

// ---------------------------------------------------------------------
// Theorem 1 on random programs.
// ---------------------------------------------------------------------

#[test]
fn verified_mapping_never_introduces_behaviors() {
    use risotto::litmus::{Program, Reg};
    use risotto::mappings::check::check_mapping;
    use risotto::mappings::scheme::{verified_x86_to_arm, RmwLowering};
    use risotto::memmodel::{Arm, Loc, X86Tso};

    check("verified_mapping_never_introduces_behaviors", 24, |rng| {
        let arb_steps = |rng: &mut Rng| {
            let n = 1 + rng.usize_below(2);
            (0..n).map(|_| (rng.u8_below(5), rng.u8_below(2))).collect::<Vec<_>>()
        };
        let t0 = arb_steps(rng);
        let t1 = arb_steps(rng);
        let build = |steps: &[(u8, u8)], tid: u32| {
            let mut instrs = Vec::new();
            let mut reg = tid * 8;
            for &(kind, loc) in steps {
                let l = Loc(u32::from(loc));
                match kind {
                    0 => instrs.push(risotto::litmus::Instr::Store {
                        loc: l.into(),
                        val: risotto::litmus::Expr::Const(1),
                        mode: risotto::memmodel::AccessMode::Plain,
                    }),
                    1 | 2 => {
                        instrs.push(risotto::litmus::Instr::Load {
                            dst: Reg(reg),
                            loc: l.into(),
                            mode: risotto::memmodel::AccessMode::Plain,
                        });
                        reg += 1;
                    }
                    3 => instrs
                        .push(risotto::litmus::Instr::Fence(risotto::memmodel::FenceKind::MFence)),
                    _ => {
                        instrs.push(risotto::litmus::Instr::Rmw {
                            dst: Some(Reg(reg)),
                            loc: l.into(),
                            expected: risotto::litmus::Expr::Const(0),
                            desired: risotto::litmus::Expr::Const(1),
                            kind: risotto::litmus::RmwKind::X86Lock,
                        });
                        reg += 1;
                    }
                }
            }
            risotto::litmus::Thread { instrs }
        };
        let prog = Program {
            name: "prop".into(),
            init: Default::default(),
            threads: vec![build(&t0, 0), build(&t1, 1)],
        };
        for rmw in [RmwLowering::Rmw2Fenced, RmwLowering::Casal] {
            let scheme = verified_x86_to_arm(rmw);
            assert!(
                check_mapping(&scheme, &prog, &X86Tso::new(), &Arm::corrected()).is_ok(),
                "Theorem 1 violated for {prog:?}"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Whole-DBT differential on random straight-line guest programs.
// ---------------------------------------------------------------------

#[test]
fn dbt_matches_interpreter_on_random_programs() {
    use risotto::core::{Emulator, Setup};
    use risotto::guest::{GelfBuilder, Interp};
    use risotto::host::CostModel;

    check("dbt_matches_interpreter_on_random_programs", 32, |rng| {
        let n = 1 + rng.usize_below(29);
        let steps: Vec<(u8, u8, u16)> =
            (0..n).map(|_| (rng.u8_below(8), rng.u8_below(4), rng.u16())).collect();

        let mut b = GelfBuilder::new("main");
        let slots = b.data_zeroed(64);
        b.asm.label("main");
        for (kind, r, imm) in &steps {
            let dst = Gpr(r % 4); // rax..rbx
            let src = Gpr((r + 1) % 4);
            match kind % 8 {
                0 => {
                    b.asm.mov_ri(dst, u64::from(*imm));
                }
                1 => {
                    b.asm.alu_rr(AluOp::Add, dst, src);
                }
                2 => {
                    b.asm.alu_ri(AluOp::Mul, dst, u64::from(*imm) | 1);
                }
                3 => {
                    b.asm.mov_ri(Gpr::R8, slots + (u64::from(*imm) % 8) * 8);
                    b.asm.store(Gpr::R8, 0, dst);
                }
                4 => {
                    b.asm.mov_ri(Gpr::R8, slots + (u64::from(*imm) % 8) * 8);
                    b.asm.load(dst, Gpr::R8, 0);
                }
                5 => {
                    b.asm.alu_ri(AluOp::Xor, dst, u64::from(*imm));
                }
                6 => {
                    b.asm.fp(FpOp::CvtIF, dst, src);
                }
                _ => {
                    b.asm.alu_ri(AluOp::Shr, dst, u64::from(*imm % 63));
                }
            }
        }
        b.asm.hlt();
        let bin = b.finish().expect("assembling random program");

        let mut interp = Interp::new(&bin);
        interp.run(1_000_000).expect("interpreter run");
        let expect = interp.exit_val(0);
        for setup in Setup::ALL {
            let mut emu = Emulator::new(&bin, setup, 1, CostModel::uniform());
            let r = emu.run(10_000_000).expect("emulator run");
            assert_eq!(r.exit_vals[0], Some(expect), "setup {}", setup.name());
        }
    });
}

// ---------------------------------------------------------------------
// Whole-DBT differential on branching / looping guest programs.
// ---------------------------------------------------------------------

#[test]
fn dbt_matches_interpreter_on_branching_programs() {
    use risotto::core::{Emulator, Setup};
    use risotto::guest::{GelfBuilder, Interp};
    use risotto::host::CostModel;

    check("dbt_matches_interpreter_on_branching_programs", 24, |rng| {
        let loop_count = 1 + rng.below(11);
        let n = 1 + rng.usize_below(9);
        let steps: Vec<(u8, u8, u16)> =
            (0..n).map(|_| (rng.u8_below(6), rng.u8_below(3), rng.u16())).collect();
        let cond_pick = rng.u8_below(12);

        // A counted loop whose body mixes ALU ops, memory, and a data-
        // dependent branch; checksum accumulates in RAX.
        let mut b = GelfBuilder::new("main");
        let slots = b.data_zeroed(64);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, 1);
        b.asm.mov_ri(Gpr::RCX, loop_count);
        b.asm.label("loop");
        for (kind, r, imm) in &steps {
            let dst = Gpr(8 + (r % 3)); // r8..r10
            match kind % 6 {
                0 => {
                    b.asm.alu_ri(AluOp::Add, dst, u64::from(*imm));
                }
                1 => {
                    b.asm.alu_rr(AluOp::Xor, dst, Gpr::RAX);
                }
                2 => {
                    b.asm.mov_ri(Gpr::R11, slots + (u64::from(*imm) % 8) * 8);
                    b.asm.store(Gpr::R11, 0, dst);
                }
                3 => {
                    b.asm.mov_ri(Gpr::R11, slots + (u64::from(*imm) % 8) * 8);
                    b.asm.load(dst, Gpr::R11, 0);
                }
                4 => {
                    b.asm.alu_ri(AluOp::Mul, dst, u64::from(*imm).wrapping_mul(2) | 1);
                }
                _ => {
                    b.asm.alu_rr(AluOp::Add, Gpr::RAX, dst);
                }
            }
        }
        // Data-dependent branch inside the loop.
        let cond = Cond::from_u8(cond_pick % 12).expect("condition codes 0..12 are valid");
        b.asm.cmp_ri(Gpr::R8, 1000);
        b.asm.jcc_to(cond, "skip");
        b.asm.alu_ri(AluOp::Add, Gpr::RAX, 13);
        b.asm.label("skip");
        b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
        b.asm.cmp_ri(Gpr::RCX, 0);
        b.asm.jcc_to(Cond::Ne, "loop");
        // Fold the scratch registers into the checksum.
        for r in 8..11 {
            b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr(r));
        }
        b.asm.hlt();
        let bin = b.finish().expect("assembling branching program");

        let mut interp = Interp::new(&bin);
        interp.run(5_000_000).expect("interpreter run");
        let expect = interp.exit_val(0);
        for setup in Setup::ALL {
            let mut emu = Emulator::new(&bin, setup, 1, CostModel::uniform());
            let r = emu.run(50_000_000).expect("emulator run");
            assert_eq!(r.exit_vals[0], Some(expect), "setup {}", setup.name());
        }
    });
}

// ---------------------------------------------------------------------
// Backend register pressure: spill/reload and deopt write-back paths.
// ---------------------------------------------------------------------

/// Drives the backend allocator past its 18-register pool: more than 18
/// simultaneously-live values (temps plus pinned/dirty guest registers),
/// a mid-block `SideExit` deopt point, and a fold that keeps every temp
/// live to its distant use. Checks that the spill/reload and deferred
/// write-back machinery engages, that lowering is bit-deterministic, and
/// that the encoding verifier (including its env write-back coverage
/// check at every exit anchor) accepts the result under both RMW styles.
#[test]
fn register_pressure_spills_deterministically_and_verifies() {
    use risotto::host::{check_encoding, lower_block_with_stats, BackendConfig, RmwStyle};

    check("register_pressure_spills_deterministically_and_verifies", 48, |rng| {
        let mut block = TcgBlock {
            guest_pc: 0x4000,
            guest_len: 8,
            ops: Vec::new(),
            exit: TbExit::Halt,
            n_temps: 0,
        };
        // More register-resident values than the 18-register pool can
        // hold. Each pressure temp is *computed* (MovI alone records a
        // rematerializable constant and never spills; GetReg results
        // alias their pinned env value), so every one claims and holds
        // a register until the distant fold below.
        let n_live = 20 + rng.usize_below(6);
        let seed = block.new_temp();
        block.ops.push(TcgOp::MovI { dst: seed, val: rng.u64() >> 32 });
        let mut temps = Vec::with_capacity(n_live + 4);
        let mut prev = seed;
        for _ in 0..n_live {
            let t = block.new_temp();
            block.ops.push(TcgOp::Bin { op: BinOp::Add, dst: t, a: prev, b: seed });
            temps.push(t);
            prev = t;
        }
        // Pin a few guest registers into the value set too.
        for _ in 0..(2 + rng.usize_below(3)) {
            let t = block.new_temp();
            block.ops.push(TcgOp::GetReg { dst: t, reg: rng.u8_below(16) });
            temps.push(t);
        }
        // Dirty a few guest registers so the deopt point owes write-backs.
        for _ in 0..(1 + rng.usize_below(4)) {
            let src = temps[rng.usize_below(temps.len())];
            block.ops.push(TcgOp::SetReg { reg: rng.u8_below(16), src });
        }
        // Mid-block deopt: the off-trace path must see a coherent env.
        let flag = block.new_temp();
        block.ops.push(TcgOp::MovI { dst: flag, val: 1 });
        block.ops.push(TcgOp::SideExit { flag, stay_if: true, target: 0x7000 });
        // Fold every temp into an accumulator — each one stays live
        // until this distant use, forcing spill/reload traffic.
        let mut acc = temps[0];
        for &t in &temps[1..] {
            let next = block.new_temp();
            block.ops.push(TcgOp::Bin { op: BinOp::Add, dst: next, a: acc, b: t });
            acc = next;
        }
        block.ops.push(TcgOp::SetReg { reg: 0, src: acc });
        block.exit = if rng.below(2) == 0 {
            TbExit::Jump(0x5000)
        } else {
            TbExit::CondJump { flag: acc, taken: 0x5000, fallthrough: 0x5008 }
        };

        for rmw in [RmwStyle::Casal, RmwStyle::Rmw2Fenced] {
            let be = BackendConfig::dbt(rmw);
            let a = lower_block_with_stats(&block, be).expect("pressure block lowers");
            let b = lower_block_with_stats(&block, be).expect("pressure block lowers again");
            assert_eq!(a.insns, b.insns, "nondeterministic lowering under pressure");
            assert_eq!(a.alloc, b.alloc, "nondeterministic allocation stats");
            assert!(a.alloc.spills > 0, "pressure block must spill");
            assert!(a.alloc.reloads > 0, "pressure block must reload");
            assert!(a.alloc.env_stores > 0, "dirty guest registers must write back");
            let mut bytes = Vec::new();
            for i in &a.insns {
                i.encode(&mut bytes);
            }
            check_encoding(&block, &a.insns, &bytes, be)
                .expect("pressure block passes the encoding verifier");
        }
    });
}

/// The optimizer's two policies agree on single-threaded semantics
/// (the QemuUnsound policy is only unsound *concurrently*).
#[test]
fn opt_policies_agree_sequentially() {
    use risotto::core::{Emulator, Setup};
    use risotto::guest::GelfBuilder;
    use risotto::host::CostModel;

    check("opt_policies_agree_sequentially", 64, |rng| {
        let n = 1 + rng.usize_below(19);
        let steps: Vec<(u8, u8, u16)> =
            (0..n).map(|_| (rng.u8_below(6), rng.u8_below(3), rng.u16())).collect();

        let mut b = GelfBuilder::new("main");
        let slots = b.data_zeroed(64);
        b.asm.label("main");
        for (kind, r, imm) in &steps {
            let dst = Gpr(8 + (r % 3));
            match kind % 6 {
                0 => {
                    b.asm.mov_ri(dst, u64::from(*imm));
                }
                1 => {
                    b.asm.alu_ri(AluOp::Add, dst, 3);
                }
                2 | 5 => {
                    b.asm.mov_ri(Gpr::R11, slots + (u64::from(*imm) % 4) * 8);
                    b.asm.store(Gpr::R11, 0, dst);
                }
                3 => {
                    b.asm.mov_ri(Gpr::R11, slots + (u64::from(*imm) % 4) * 8);
                    b.asm.load(dst, Gpr::R11, 0);
                }
                _ => {
                    b.asm.mfence();
                }
            }
        }
        b.asm.mov_rr(Gpr::RAX, Gpr::R8);
        b.asm.hlt();
        let bin = b.finish().expect("assembling program");
        // Qemu (unsound-policy optimizer) vs Risotto (verified): identical
        // sequential results.
        let mut q = Emulator::new(&bin, Setup::Qemu, 1, CostModel::uniform());
        let mut r = Emulator::new(&bin, Setup::Risotto, 1, CostModel::uniform());
        let qr = q.run(10_000_000).expect("qemu-setup run");
        let rr = r.run(10_000_000).expect("risotto-setup run");
        assert_eq!(qr.exit_vals[0], rr.exit_vals[0]);
    });
}
