//! Property-based tests across the workspace (proptest).
//!
//! * codecs: MiniX86 and MiniArm encode/decode round-trips,
//! * optimizer: every pass pipeline preserves block semantics on random
//!   straight-line TCG blocks,
//! * relation algebra: closure/composition laws,
//! * fence lattice: join is an upper bound, `arm_dmb` is monotone,
//! * Theorem 1: the verified x86→Arm mapping never introduces behaviors
//!   on randomly generated two-thread programs,
//! * whole-DBT: random straight-line guest programs produce identical
//!   results under the interpreter and every emulator setup.

use proptest::prelude::*;
use risotto::guest::{AluOp, Cond, FpOp, Gpr, Insn, Operand};
use risotto::host::{HostInsn, Xreg};
use risotto::memmodel::{EventId, FenceKind, Relation};
use risotto::tcg::{env, eval_block, optimize, BinOp, CondOp, OptPolicy, TbExit, TcgBlock, TcgOp};

// ---------------------------------------------------------------------
// Codec round-trips.
// ---------------------------------------------------------------------

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..16).prop_map(Gpr)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![arb_gpr().prop_map(Operand::Reg), any::<u64>().prop_map(Operand::Imm)]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..12).prop_map(|v| Cond::from_u8(v).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
        Just(AluOp::Mul),
    ]
}

fn arb_guest_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_gpr(), any::<u64>()).prop_map(|(dst, imm)| Insn::MovRI { dst, imm }),
        (arb_gpr(), arb_gpr()).prop_map(|(dst, src)| Insn::MovRR { dst, src }),
        (arb_gpr(), arb_gpr(), any::<i32>())
            .prop_map(|(dst, base, disp)| Insn::Load { dst, base, disp }),
        (arb_gpr(), arb_gpr(), any::<i32>())
            .prop_map(|(src, base, disp)| Insn::Store { base, disp, src }),
        (arb_gpr(), arb_gpr(), any::<i32>())
            .prop_map(|(dst, base, disp)| Insn::LoadB { dst, base, disp }),
        (arb_gpr(), arb_gpr(), any::<i32>())
            .prop_map(|(src, base, disp)| Insn::StoreB { base, disp, src }),
        (arb_alu_op(), arb_gpr(), arb_operand())
            .prop_map(|(op, dst, src)| Insn::Alu { op, dst, src }),
        (arb_gpr(), arb_operand()).prop_map(|(a, b)| Insn::Cmp { a, b }),
        (arb_cond(), any::<i32>()).prop_map(|(cond, rel)| Insn::Jcc { cond, rel }),
        arb_gpr().prop_map(|src| Insn::MulWide { src }),
        (arb_gpr(), arb_gpr(), any::<i32>())
            .prop_map(|(src, base, disp)| Insn::LockCmpxchg { base, disp, src }),
        Just(Insn::Mfence),
        Just(Insn::Ret),
        Just(Insn::Hlt),
        Just(Insn::Syscall),
    ]
}

proptest! {
    #[test]
    fn guest_insn_roundtrips(insn in arb_guest_insn()) {
        let mut buf = Vec::new();
        let n = insn.encode(&mut buf);
        let (decoded, len) = Insn::decode(&buf).unwrap();
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, n);
    }

    #[test]
    fn guest_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let _ = Insn::decode(&bytes); // must not panic, errors are fine
    }

    #[test]
    fn host_insn_roundtrips(
        op in 0u8..12,
        r1 in 0u8..32,
        r2 in 0u8..32,
        imm in any::<u64>(),
        rel in any::<i32>(),
    ) {
        use risotto::host::{ACond, AOp, Dmb, MemOrder};
        let insns = vec![
            HostInsn::MovImm { dst: Xreg(r1), imm },
            HostInsn::Ldr { dst: Xreg(r1), base: Xreg(r2), off: rel, order: MemOrder::Plain },
            HostInsn::Str { src: Xreg(r1), base: Xreg(r2), off: rel, order: MemOrder::AcqRel },
            HostInsn::LdrB { dst: Xreg(r1), base: Xreg(r2), off: rel },
            HostInsn::Cas { cmp_old: Xreg(r1), new: Xreg(r2), addr: Xreg(r1), acq_rel: op % 2 == 0 },
            HostInsn::Barrier(match op % 3 { 0 => Dmb::Ld, 1 => Dmb::St, _ => Dmb::Ff }),
            HostInsn::BCond { cond: if op % 2 == 0 { ACond::Eq } else { ACond::Hi }, rel },
            HostInsn::AluImm { op: AOp::Eor, dst: Xreg(r1), a: Xreg(r2), imm },
        ];
        for insn in insns {
            let mut buf = Vec::new();
            let n = insn.encode(&mut buf);
            let (decoded, len) = HostInsn::decode(&buf).unwrap();
            prop_assert_eq!(decoded, insn);
            prop_assert_eq!(len, n);
        }
    }

    #[test]
    fn host_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let _ = HostInsn::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// Relation algebra.
// ---------------------------------------------------------------------

fn arb_relation(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..20)
        .prop_map(move |pairs| {
            Relation::from_pairs(n, pairs.into_iter().map(|(a, b)| (EventId(a), EventId(b))))
        })
}

proptest! {
    #[test]
    fn closure_laws(r in arb_relation(8), s in arb_relation(8)) {
        let tc = r.transitive_closure();
        // Idempotent, monotone, contains the base.
        prop_assert_eq!(tc.transitive_closure(), tc.clone());
        for (a, b) in r.iter_pairs() {
            prop_assert!(tc.contains(a, b));
        }
        // Composition distributes over union on the left.
        let lhs = r.union(&s).compose(&r);
        let rhs = r.compose(&r).union(&s.compose(&r));
        prop_assert_eq!(lhs, rhs);
        // Inverse is involutive.
        prop_assert_eq!(r.inverse().inverse(), r.clone());
        // acyclic(r) ⇔ irreflexive(r⁺).
        prop_assert_eq!(r.is_acyclic(), tc.is_irreflexive());
    }
}

// ---------------------------------------------------------------------
// Fence lattice.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fence_join_is_upper_bound(ai in 0usize..12, bi in 0usize..12) {
        let a = FenceKind::TCG_ALL[ai];
        let b = FenceKind::TCG_ALL[bi];
        let j = a.tcg_join(b);
        prop_assert!(j.tcg_at_least(a), "{j:?} not ≥ {a:?}");
        prop_assert!(j.tcg_at_least(b), "{j:?} not ≥ {b:?}");
        // arm_dmb is monotone: the join's lowering orders at least as much.
        let rank = |f: Option<FenceKind>| match f {
            None => 0,
            Some(FenceKind::DmbLd) | Some(FenceKind::DmbSt) => 1,
            _ => 2,
        };
        prop_assert!(rank(j.arm_dmb()) >= rank(a.arm_dmb()).min(rank(b.arm_dmb())));
    }
}

// ---------------------------------------------------------------------
// Optimizer semantic preservation on random blocks.
// ---------------------------------------------------------------------

/// Generates a random straight-line SSA block over a handful of env regs
/// and memory addresses in a private scratch range.
fn arb_tcg_block() -> impl Strategy<Value = TcgBlock> {
    let step = prop_oneof![
        (0u8..6, any::<u16>()).prop_map(|(r, v)| (0u8, r, v as u64)), // MovI+SetReg
        (0u8..6, 0u8..6).prop_map(|(a, b)| (1u8, a, b as u64)),       // Add regs
        (0u8..6, 0u8..6).prop_map(|(a, b)| (2u8, a, b as u64)),       // Mul regs
        (0u8..6, 0u8..4).prop_map(|(r, s)| (3u8, r, s as u64)),       // Store reg → slot
        (0u8..6, 0u8..4).prop_map(|(r, s)| (4u8, r, s as u64)),       // Load slot → reg
        (0u8..3,).prop_map(|(f,)| (5u8, f, 0)),                       // Fence
        (0u8..6, 0u8..6).prop_map(|(a, b)| (6u8, a, b as u64)),       // Setcond
    ];
    proptest::collection::vec(step, 1..24).prop_map(|steps| {
        let mut block = TcgBlock {
            guest_pc: 0x1000,
            guest_len: 0,
            ops: Vec::new(),
            exit: TbExit::Halt,
            n_temps: 0,
        };
        let scratch = 0x9000u64;
        for (kind, x, y) in steps {
            match kind {
                0 => {
                    let t = block.new_temp();
                    block.ops.push(TcgOp::MovI { dst: t, val: y });
                    block.ops.push(TcgOp::SetReg { reg: x % 6, src: t });
                }
                1 | 2 => {
                    let a = block.new_temp();
                    let b = block.new_temp();
                    let d = block.new_temp();
                    block.ops.push(TcgOp::GetReg { dst: a, reg: x % 6 });
                    block.ops.push(TcgOp::GetReg { dst: b, reg: (y % 6) as u8 });
                    let op = if kind == 1 { BinOp::Add } else { BinOp::Mul };
                    block.ops.push(TcgOp::Bin { op, dst: d, a, b });
                    block.ops.push(TcgOp::SetReg { reg: x % 6, src: d });
                }
                3 => {
                    let a = block.new_temp();
                    let v = block.new_temp();
                    block.ops.push(TcgOp::MovI { dst: a, val: scratch + (y % 4) * 8 });
                    block.ops.push(TcgOp::GetReg { dst: v, reg: x % 6 });
                    block.ops.push(TcgOp::St { addr: a, src: v });
                }
                4 => {
                    let a = block.new_temp();
                    let v = block.new_temp();
                    block.ops.push(TcgOp::MovI { dst: a, val: scratch + (y % 4) * 8 });
                    block.ops.push(TcgOp::Ld { dst: v, addr: a });
                    block.ops.push(TcgOp::SetReg { reg: x % 6, src: v });
                }
                5 => {
                    let f = match x % 3 {
                        0 => FenceKind::Frm,
                        1 => FenceKind::Fww,
                        _ => FenceKind::Fsc,
                    };
                    block.ops.push(TcgOp::Fence(f));
                }
                _ => {
                    let a = block.new_temp();
                    let b = block.new_temp();
                    let d = block.new_temp();
                    block.ops.push(TcgOp::GetReg { dst: a, reg: x % 6 });
                    block.ops.push(TcgOp::GetReg { dst: b, reg: (y % 6) as u8 });
                    block.ops.push(TcgOp::Setcond { cond: CondOp::LtU, dst: d, a, b });
                    block.ops.push(TcgOp::SetReg { reg: x % 6, src: d });
                }
            }
        }
        block
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn optimizer_preserves_block_semantics(block in arb_tcg_block(), seed in any::<u64>()) {
        let mut optimized = block.clone();
        optimize(&mut optimized, OptPolicy::Verified);
        // Evaluate both against the same initial env/memory.
        let mut env1 = [0u64; env::COUNT];
        for (i, slot) in env1.iter_mut().enumerate() {
            *slot = seed.wrapping_mul(i as u64 + 1) % 97;
        }
        let mut env2 = env1;
        let mut m1 = risotto::guest::SparseMem::new();
        m1.write_u64(0x9000, seed % 1000);
        m1.write_u64(0x9008, seed % 7);
        let mut m2 = m1.clone();
        let e1 = eval_block(&block, &mut env1, &mut m1);
        let e2 = eval_block(&optimized, &mut env2, &mut m2);
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(env1, env2);
        for slot in 0..4u64 {
            prop_assert_eq!(
                m1.read_u64(0x9000 + slot * 8),
                m2.read_u64(0x9000 + slot * 8),
                "memory slot {} diverged", slot
            );
        }
    }

    /// The optimizer never *adds* fences and never weakens one.
    #[test]
    fn optimizer_never_strengthens_fence_count(block in arb_tcg_block()) {
        let before = block.count_ops(|o| matches!(o, TcgOp::Fence(_)));
        let mut optimized = block.clone();
        optimize(&mut optimized, OptPolicy::Verified);
        let after = optimized.count_ops(|o| matches!(o, TcgOp::Fence(_)));
        prop_assert!(after <= before);
    }
}

// ---------------------------------------------------------------------
// Theorem 1 on random programs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn verified_mapping_never_introduces_behaviors(
        t0 in proptest::collection::vec((0u8..5, 0u8..2), 1..3),
        t1 in proptest::collection::vec((0u8..5, 0u8..2), 1..3),
    ) {
        use risotto::litmus::{Program, Reg};
        use risotto::mappings::check::check_mapping;
        use risotto::mappings::scheme::{verified_x86_to_arm, RmwLowering};
        use risotto::memmodel::{Arm, Loc, X86Tso};

        let build = |steps: &[(u8, u8)], tid: u32| {
            let mut instrs = Vec::new();
            let mut reg = tid * 8;
            for &(kind, loc) in steps {
                let l = Loc(loc as u32);
                match kind {
                    0 => instrs.push(risotto::litmus::Instr::Store {
                        loc: l.into(),
                        val: risotto::litmus::Expr::Const(1),
                        mode: risotto::memmodel::AccessMode::Plain,
                    }),
                    1 | 2 => {
                        instrs.push(risotto::litmus::Instr::Load {
                            dst: Reg(reg),
                            loc: l.into(),
                            mode: risotto::memmodel::AccessMode::Plain,
                        });
                        reg += 1;
                    }
                    3 => instrs.push(risotto::litmus::Instr::Fence(
                        risotto::memmodel::FenceKind::MFence,
                    )),
                    _ => {
                        instrs.push(risotto::litmus::Instr::Rmw {
                            dst: Some(Reg(reg)),
                            loc: l.into(),
                            expected: risotto::litmus::Expr::Const(0),
                            desired: risotto::litmus::Expr::Const(1),
                            kind: risotto::litmus::RmwKind::X86Lock,
                        });
                        reg += 1;
                    }
                }
            }
            risotto::litmus::Thread { instrs }
        };
        let prog = Program {
            name: "prop".into(),
            init: Default::default(),
            threads: vec![build(&t0, 0), build(&t1, 1)],
        };
        for rmw in [RmwLowering::Rmw2Fenced, RmwLowering::Casal] {
            let scheme = verified_x86_to_arm(rmw);
            prop_assert!(
                check_mapping(&scheme, &prog, &X86Tso::new(), &Arm::corrected()).is_ok(),
                "Theorem 1 violated for {:?}", prog
            );
        }
    }
}

// ---------------------------------------------------------------------
// Whole-DBT differential on random straight-line guest programs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn dbt_matches_interpreter_on_random_programs(
        steps in proptest::collection::vec((0u8..8, 0u8..4, any::<u16>()), 1..30),
    ) {
        use risotto::core::{Emulator, Setup};
        use risotto::guest::{GelfBuilder, Interp};
        use risotto::host::CostModel;

        let mut b = GelfBuilder::new("main");
        let slots = b.data_zeroed(64);
        b.asm.label("main");
        for (kind, r, imm) in &steps {
            let dst = Gpr(r % 4); // rax..rbx
            let src = Gpr((r + 1) % 4);
            match kind % 8 {
                0 => { b.asm.mov_ri(dst, *imm as u64); }
                1 => { b.asm.alu_rr(AluOp::Add, dst, src); }
                2 => { b.asm.alu_ri(AluOp::Mul, dst, *imm as u64 | 1); }
                3 => {
                    b.asm.mov_ri(Gpr::R8, slots + (*imm as u64 % 8) * 8);
                    b.asm.store(Gpr::R8, 0, dst);
                }
                4 => {
                    b.asm.mov_ri(Gpr::R8, slots + (*imm as u64 % 8) * 8);
                    b.asm.load(dst, Gpr::R8, 0);
                }
                5 => { b.asm.alu_ri(AluOp::Xor, dst, *imm as u64); }
                6 => { b.asm.fp(FpOp::CvtIF, dst, src); }
                _ => { b.asm.alu_ri(AluOp::Shr, dst, (*imm % 63) as u64); }
            }
        }
        b.asm.hlt();
        let bin = b.finish().unwrap();

        let mut interp = Interp::new(&bin);
        interp.run(1_000_000).unwrap();
        let expect = interp.exit_val(0);
        for setup in Setup::ALL {
            let mut emu = Emulator::new(&bin, setup, 1, CostModel::uniform());
            let r = emu.run(10_000_000).unwrap();
            prop_assert_eq!(r.exit_vals[0], Some(expect), "setup {}", setup.name());
        }
    }
}

// ---------------------------------------------------------------------
// Whole-DBT differential on branching / looping guest programs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn dbt_matches_interpreter_on_branching_programs(
        loop_count in 1u64..12,
        steps in proptest::collection::vec((0u8..6, 0u8..3, any::<u16>()), 1..10),
        cond_pick in 0u8..12,
    ) {
        use risotto::core::{Emulator, Setup};
        use risotto::guest::{GelfBuilder, Interp};
        use risotto::host::CostModel;

        // A counted loop whose body mixes ALU ops, memory, and a data-
        // dependent branch; checksum accumulates in RAX.
        let mut b = GelfBuilder::new("main");
        let slots = b.data_zeroed(64);
        b.asm.label("main");
        b.asm.mov_ri(Gpr::RAX, 1);
        b.asm.mov_ri(Gpr::RCX, loop_count);
        b.asm.label("loop");
        for (kind, r, imm) in &steps {
            let dst = Gpr(8 + (r % 3)); // r8..r10
            match kind % 6 {
                0 => { b.asm.alu_ri(AluOp::Add, dst, *imm as u64); }
                1 => { b.asm.alu_rr(AluOp::Xor, dst, Gpr::RAX); }
                2 => {
                    b.asm.mov_ri(Gpr::R11, slots + (*imm as u64 % 8) * 8);
                    b.asm.store(Gpr::R11, 0, dst);
                }
                3 => {
                    b.asm.mov_ri(Gpr::R11, slots + (*imm as u64 % 8) * 8);
                    b.asm.load(dst, Gpr::R11, 0);
                }
                4 => { b.asm.alu_ri(AluOp::Mul, dst, (*imm as u64).wrapping_mul(2) | 1); }
                _ => { b.asm.alu_rr(AluOp::Add, Gpr::RAX, dst); }
            }
        }
        // Data-dependent branch inside the loop.
        let cond = Cond::from_u8(cond_pick % 12).unwrap();
        b.asm.cmp_ri(Gpr::R8, 1000);
        b.asm.jcc_to(cond, "skip");
        b.asm.alu_ri(AluOp::Add, Gpr::RAX, 13);
        b.asm.label("skip");
        b.asm.alu_ri(AluOp::Sub, Gpr::RCX, 1);
        b.asm.cmp_ri(Gpr::RCX, 0);
        b.asm.jcc_to(Cond::Ne, "loop");
        // Fold the scratch registers into the checksum.
        for r in 8..11 {
            b.asm.alu_rr(AluOp::Add, Gpr::RAX, Gpr(r));
        }
        b.asm.hlt();
        let bin = b.finish().unwrap();

        let mut interp = Interp::new(&bin);
        interp.run(5_000_000).unwrap();
        let expect = interp.exit_val(0);
        for setup in Setup::ALL {
            let mut emu = Emulator::new(&bin, setup, 1, CostModel::uniform());
            let r = emu.run(50_000_000).unwrap();
            prop_assert_eq!(r.exit_vals[0], Some(expect), "setup {}", setup.name());
        }
    }

    /// The optimizer's two policies agree on single-threaded semantics
    /// (the QemuUnsound policy is only unsound *concurrently*).
    #[test]
    fn opt_policies_agree_sequentially(
        steps in proptest::collection::vec((0u8..6, 0u8..3, any::<u16>()), 1..20),
    ) {
        use risotto::core::{Emulator, Setup};
        use risotto::guest::GelfBuilder;
        use risotto::host::CostModel;

        let mut b = GelfBuilder::new("main");
        let slots = b.data_zeroed(64);
        b.asm.label("main");
        for (kind, r, imm) in &steps {
            let dst = Gpr(8 + (r % 3));
            match kind % 6 {
                0 => { b.asm.mov_ri(dst, *imm as u64); }
                1 => { b.asm.alu_ri(AluOp::Add, dst, 3); }
                2 | 5 => {
                    b.asm.mov_ri(Gpr::R11, slots + (*imm as u64 % 4) * 8);
                    b.asm.store(Gpr::R11, 0, dst);
                }
                3 => {
                    b.asm.mov_ri(Gpr::R11, slots + (*imm as u64 % 4) * 8);
                    b.asm.load(dst, Gpr::R11, 0);
                }
                _ => { b.asm.mfence(); }
            }
        }
        b.asm.mov_rr(Gpr::RAX, Gpr::R8);
        b.asm.hlt();
        let bin = b.finish().unwrap();
        // Qemu (unsound-policy optimizer) vs Risotto (verified): identical
        // sequential results.
        let mut q = Emulator::new(&bin, Setup::Qemu, 1, CostModel::uniform());
        let mut r = Emulator::new(&bin, Setup::Risotto, 1, CostModel::uniform());
        let qr = q.run(10_000_000).unwrap();
        let rr = r.run(10_000_000).unwrap();
        prop_assert_eq!(qr.exit_vals[0], rr.exit_vals[0]);
    }
}
