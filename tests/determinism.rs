//! Codegen determinism suite.
//!
//! The backend's register allocator makes every decision over dense
//! arrays in a fixed order (no hash-seeded iteration), so the same IR
//! must always lower to bit-identical host bytes — a property that
//! byte-identity verification, reproducible fault sweeps, and any
//! future content-hash TB sharing all rely on. This suite lowers every
//! block the real pipeline produces — the Fig. 12 kernel corpus, the
//! litmus programs, the checked-in fuzz corpus, and tier-2 superblocks
//! stitched from hot chains — **twice from fresh allocator state**,
//! under both `RmwStyle`s, and asserts the two encodings and the
//! reported allocation statistics are identical.
//!
//! `RISOTTO_VERIFY_SMOKE=1` bounds the sweep for CI.

use risotto::fuzz::parse_corpus;
use risotto::guest::{GuestBinary, TEXT_BASE};
use risotto::host::{lower_block_with_stats, BackendConfig, HostInsn, RmwStyle};
use risotto::litmus::corpus;
use risotto::tcg::{
    optimize_with, superblock, translate_block, FrontendConfig, OptPolicy, PassConfig, TbExit,
    TcgBlock,
};
use risotto::workloads::kernels;
use risotto::workloads::litmus_compile::compile_litmus;

fn smoke() -> bool {
    std::env::var("RISOTTO_VERIFY_SMOKE").is_ok_and(|v| v == "1")
}

/// The frontend/optimizer pairings the engine's setups use.
fn configs() -> [(FrontendConfig, OptPolicy); 4] {
    [
        (FrontendConfig::risotto(), OptPolicy::Verified),
        (FrontendConfig::tcg_ver(), OptPolicy::Verified),
        (FrontendConfig::qemu(), OptPolicy::QemuUnsound),
        (FrontendConfig::no_fences(), OptPolicy::QemuUnsound),
    ]
}

fn backends() -> [BackendConfig; 2] {
    [BackendConfig::dbt(RmwStyle::Casal), BackendConfig::dbt(RmwStyle::Rmw2Fenced)]
}

fn fetcher(bin: &GuestBinary) -> impl Fn(u64) -> [u8; 16] + '_ {
    move |addr: u64| {
        let mut w = [0u8; 16];
        for (i, slot) in w.iter_mut().enumerate() {
            let byte = addr
                .checked_sub(TEXT_BASE)
                .and_then(|off| off.checked_add(i as u64))
                .and_then(|off| usize::try_from(off).ok())
                .and_then(|off| bin.text.get(off));
            if let Some(&b) = byte {
                *slot = b;
            }
        }
        w
    }
}

/// BFS over the static control flow from the entry point, like tier-1
/// translation would walk it.
fn discover_blocks(bin: &GuestBinary, cfg: FrontendConfig, cap: usize) -> Vec<TcgBlock> {
    let fetch = fetcher(bin);
    let mut seen = std::collections::HashSet::new();
    let mut queue = vec![bin.entry];
    let mut blocks = Vec::new();
    while let Some(pc) = queue.pop() {
        if blocks.len() >= cap || !seen.insert(pc) {
            continue;
        }
        let Ok(block) = translate_block(pc, cfg, &fetch) else {
            continue;
        };
        match block.exit {
            TbExit::Jump(t) => queue.push(t),
            TbExit::CondJump { taken, fallthrough, .. } => {
                queue.push(taken);
                queue.push(fallthrough);
            }
            TbExit::Syscall { next } => queue.push(next),
            TbExit::JumpReg(_) | TbExit::Halt => {}
        }
        blocks.push(block);
    }
    blocks
}

fn encode_all(code: &[HostInsn]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in code {
        i.encode(&mut bytes);
    }
    bytes
}

/// Lowers `block` twice from fresh allocator state and asserts the
/// encodings and allocation statistics agree bit-for-bit.
fn assert_deterministic(block: &TcgBlock, be: BackendConfig, what: &str) {
    let a = lower_block_with_stats(block, be)
        .unwrap_or_else(|e| panic!("{what}: first lowering failed: {e}"));
    let b = lower_block_with_stats(block, be)
        .unwrap_or_else(|e| panic!("{what}: second lowering failed: {e}"));
    assert_eq!(
        encode_all(&a.insns),
        encode_all(&b.insns),
        "{what}: two lowerings of the same IR produced different bytes"
    );
    assert_eq!(a.alloc, b.alloc, "{what}: allocation statistics diverged");
}

/// Every optimized tier-1 block of every kernel, under all four
/// frontend/policy pairings and both RMW styles, lowers to the same
/// bytes twice.
#[test]
fn kernel_corpus_lowers_bit_identically() {
    let scale = if smoke() { 16 } else { 64 };
    let cap = if smoke() { 10 } else { 48 };
    let mut checked = 0usize;
    for w in kernels::all() {
        let bin = (w.build)(scale, 2);
        for (cfg, policy) in configs() {
            for mut block in discover_blocks(&bin, cfg, cap) {
                optimize_with(&mut block, policy, PassConfig::all());
                for be in backends() {
                    assert_deterministic(&block, be, w.name);
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "the sweep must cover at least one block");
}

/// The litmus corpus — fence-dense, atomic-dense blocks — lowers
/// deterministically too.
#[test]
fn litmus_corpus_lowers_bit_identically() {
    for prog in [corpus::mp(), corpus::sb(), corpus::sb_fenced(), corpus::lb(), corpus::iriw()] {
        let compiled = compile_litmus(&prog, &[0, 0]);
        for (cfg, policy) in configs() {
            for mut block in discover_blocks(&compiled.binary, cfg, 32) {
                optimize_with(&mut block, policy, PassConfig::all());
                for be in backends() {
                    assert_deterministic(&block, be, &prog.name);
                }
            }
        }
    }
}

/// The checked-in fuzz reproducers (`tests/corpus/*.risotto`) lower
/// deterministically.
#[test]
fn fuzz_corpus_lowers_bit_identically() {
    let corpus: [(&str, &str); 6] = [
        ("store_store_fence", include_str!("corpus/store_store_fence.risotto")),
        ("spawn_cas_contention", include_str!("corpus/spawn_cas_contention.risotto")),
        ("hot_loop_promotion", include_str!("corpus/hot_loop_promotion.risotto")),
        ("cmpxchg_fail_path", include_str!("corpus/cmpxchg_fail_path.risotto")),
        ("fp_nan_chain", include_str!("corpus/fp_nan_chain.risotto")),
        ("fp_nan_cross_thread", include_str!("corpus/fp_nan_cross_thread.risotto")),
    ];
    for (name, text) in corpus {
        let spec = parse_corpus(text).unwrap_or_else(|e| panic!("corpus `{name}`: {e}"));
        let bin = spec.lower().unwrap_or_else(|e| panic!("corpus `{name}`: {e}"));
        for (cfg, policy) in configs() {
            for mut block in discover_blocks(&bin, cfg, 32) {
                optimize_with(&mut block, policy, PassConfig::all());
                for be in backends() {
                    assert_deterministic(&block, be, name);
                }
            }
        }
    }
}

/// Tier-2 superblocks — stitched multi-TB regions whose allocation
/// state crosses `TbBoundary` seams — lower deterministically.
#[test]
fn tier2_superblocks_lower_bit_identically() {
    let scale = if smoke() { 16 } else { 64 };
    let cap = if smoke() { 12 } else { 48 };
    let mut stitched = 0usize;
    for w in kernels::all() {
        let bin = (w.build)(scale, 2);
        for (cfg, policy) in configs() {
            let blocks = discover_blocks(&bin, cfg, cap);
            let by_pc: std::collections::BTreeMap<u64, &TcgBlock> =
                blocks.iter().map(|b| (b.guest_pc, b)).collect();
            // Chase direct-jump / fallthrough chains to form traces the
            // way tier-2 promotion would.
            for head in &blocks {
                let mut parts = vec![head.clone()];
                let mut cur = head;
                while parts.len() < 4 {
                    let next_pc = match cur.exit {
                        TbExit::Jump(t) => t,
                        TbExit::CondJump { fallthrough, .. } => fallthrough,
                        _ => break,
                    };
                    let Some(next) = by_pc.get(&next_pc) else { break };
                    if parts.iter().any(|p| p.guest_pc == next_pc) {
                        break;
                    }
                    parts.push((*next).clone());
                    cur = next;
                }
                if parts.len() < 2 {
                    continue;
                }
                let Ok(mut sb) = superblock::stitch(parts) else { continue };
                superblock::optimize_region(&mut sb, policy, PassConfig::all());
                for be in backends() {
                    assert_deterministic(&sb, be, w.name);
                }
                stitched += 1;
                if smoke() && stitched >= 24 {
                    return;
                }
            }
        }
    }
    assert!(stitched > 0, "the sweep must stitch at least one superblock");
}
